//! The database object, connections, and transaction lifecycle.
//!
//! A [`Database`] holds all state behind one mutex: statements execute
//! atomically, so every concurrency phenomenon in this substrate arises
//! from the *interleaving of statements across transactions* — exactly the
//! granularity at which the paper's anomalies live.
//!
//! Lock waits surface as [`DbError::WouldBlock`] from
//! [`Connection::try_execute`], letting the deterministic scheduler in
//! `acidrain-harness` decide what runs next; [`Connection::execute`] is the
//! blocking flavour used by threaded stress tests.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use acidrain_sql::schema::Schema;
use acidrain_sql::{parse_statement, Statement};

use crate::error::DbError;
use crate::exec;
use crate::fault::{FaultConfig, FaultInjector, FaultStats, InjectedFault};
use crate::isolation::IsolationLevel;
use crate::lock::LockManager;
use crate::log::{ApiTag, LogEntry, QueryLog, StmtOutcome};
use crate::result::ResultSet;
use crate::storage::{ReadView, RowVersion, TableData};
use crate::txn::{TxnId, TxnState, UndoRecord};
use crate::value::Value;

/// Default for how long a blocking [`Connection::execute`] waits on a lock
/// before giving up (InnoDB's `innodb_lock_wait_timeout` analogue).
/// Override per database with [`Database::set_lock_wait_timeout`]. On
/// timeout the whole transaction is rolled back
/// (`innodb_rollback_on_timeout=ON` semantics), so a timed-out session
/// never wedges other sessions by sitting on its locks.
const DEFAULT_LOCK_WAIT_TIMEOUT: Duration = Duration::from_secs(10);

pub(crate) struct DbInner {
    pub(crate) schema: Schema,
    pub(crate) tables: Vec<TableData>,
    pub(crate) locks: LockManager,
    pub(crate) txns: std::collections::HashMap<TxnId, TxnState>,
    next_txn: u64,
    /// Latest committed timestamp.
    pub(crate) commit_ts: u64,
    pub(crate) log: QueryLog,
    pub(crate) faults: FaultInjector,
}

impl DbInner {
    pub(crate) fn table_index(&self, name: &str) -> Result<usize, DbError> {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    pub(crate) fn begin(&mut self, isolation: IsolationLevel, implicit: bool) -> TxnId {
        self.next_txn += 1;
        let id = TxnId(self.next_txn);
        self.txns.insert(id, TxnState::new(id, isolation, implicit));
        id
    }

    /// The snapshot timestamp a transaction's plain reads use, pinning the
    /// transaction-long snapshot on first use for MySQL-RR and SI.
    pub(crate) fn read_snapshot_ts(&mut self, txn: TxnId) -> u64 {
        let commit_ts = self.commit_ts;
        let state = self.txns.get_mut(&txn).expect("active txn");
        if state.isolation.uses_txn_snapshot() {
            *state.snapshot_ts.get_or_insert(commit_ts)
        } else {
            state.snapshot_ts = Some(commit_ts);
            commit_ts
        }
    }

    /// A current-read view: latest committed state plus own writes.
    pub(crate) fn current_read(&self, txn: TxnId) -> ReadView {
        ReadView::Snapshot {
            as_of: self.commit_ts,
            txn,
        }
    }

    pub(crate) fn commit(&mut self, txn: TxnId) {
        let Some(state) = self.txns.remove(&txn) else {
            return;
        };
        if !state.undo.is_empty() {
            let ts = self.commit_ts + 1;
            self.commit_ts = ts;
            for record in &state.undo {
                match *record {
                    UndoRecord::Created { table, row } => {
                        for v in &mut self.tables[table].rows[row].versions {
                            if v.begin_txn == txn && v.begin_ts.is_none() {
                                v.begin_ts = Some(ts);
                            }
                        }
                    }
                    UndoRecord::Ended { table, row } => {
                        for v in &mut self.tables[table].rows[row].versions {
                            if v.end_txn == Some(txn) && v.end_ts.is_none() {
                                v.end_ts = Some(ts);
                            }
                        }
                    }
                }
            }
        }
        self.locks.release_all(txn);
    }

    pub(crate) fn rollback(&mut self, txn: TxnId) {
        let Some(state) = self.txns.remove(&txn) else {
            return;
        };
        for record in state.undo.iter().rev() {
            match *record {
                UndoRecord::Created { table, row } => {
                    self.tables[table].rows[row]
                        .versions
                        .retain(|v| !(v.begin_txn == txn && v.begin_ts.is_none()));
                }
                UndoRecord::Ended { table, row } => {
                    for v in &mut self.tables[table].rows[row].versions {
                        if v.end_txn == Some(txn) && v.end_ts.is_none() {
                            v.end_txn = None;
                        }
                    }
                }
            }
        }
        self.locks.release_all(txn);
    }
}

/// A multi-version transactional database with configurable isolation.
pub struct Database {
    inner: Mutex<DbInner>,
    released: Condvar,
    default_isolation: Mutex<IsolationLevel>,
    next_session: Mutex<u64>,
    lock_wait_timeout: Mutex<Duration>,
}

impl Database {
    /// Create a database for `schema` with the given default isolation
    /// level for new connections.
    pub fn new(schema: Schema, default_isolation: IsolationLevel) -> Arc<Self> {
        let tables = schema
            .tables()
            .map(|t| TableData::new(t.name.clone()))
            .collect();
        Arc::new(Database {
            inner: Mutex::new(DbInner {
                schema,
                tables,
                locks: LockManager::new(),
                txns: std::collections::HashMap::new(),
                next_txn: 0,
                commit_ts: 0,
                log: QueryLog::default(),
                faults: FaultInjector::default(),
            }),
            released: Condvar::new(),
            default_isolation: Mutex::new(default_isolation),
            next_session: Mutex::new(0),
            lock_wait_timeout: Mutex::new(DEFAULT_LOCK_WAIT_TIMEOUT),
        })
    }

    /// Install (or replace) the fault injector configuration. Resets the
    /// injector's per-session counters and statistics.
    pub fn enable_faults(&self, config: FaultConfig) {
        self.inner.lock().faults.reconfigure(config);
    }

    /// Turn fault injection off (counters and statistics reset).
    pub fn disable_faults(&self) {
        self.inner.lock().faults.reconfigure(FaultConfig::disabled());
    }

    /// Snapshot of the fault injector's counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.lock().faults.stats()
    }

    /// Whether the injector's latency channel is configured.
    pub fn latency_faults_enabled(&self) -> bool {
        self.inner.lock().faults.latency_enabled()
    }

    /// Set how long blocking [`Connection::execute`] calls wait on a lock
    /// before the transaction is rolled back with
    /// [`DbError::LockTimeout`]. The harness watchdog clamps this so hung
    /// lock waits degrade to reported timeouts instead of stalling runs.
    pub fn set_lock_wait_timeout(&self, timeout: Duration) {
        *self.lock_wait_timeout.lock() = timeout;
    }

    pub fn lock_wait_timeout(&self) -> Duration {
        *self.lock_wait_timeout.lock()
    }

    /// Number of currently locked resources (diagnostics: must drop to
    /// zero once every transaction has committed or rolled back).
    pub fn locked_resources(&self) -> usize {
        self.inner.lock().locks.locked_resources()
    }

    /// Change the default isolation level handed to future connections.
    pub fn set_default_isolation(&self, level: IsolationLevel) {
        *self.default_isolation.lock() = level;
    }

    pub fn default_isolation(&self) -> IsolationLevel {
        *self.default_isolation.lock()
    }

    /// Open a new session.
    pub fn connect(self: &Arc<Self>) -> Connection {
        let mut next = self.next_session.lock();
        *next += 1;
        Connection {
            db: Arc::clone(self),
            session: *next,
            isolation: self.default_isolation(),
            txn: None,
            txn_implicit: false,
            autocommit: true,
            api: None,
        }
    }

    /// Directly install committed rows, bypassing transactions and the
    /// query log — for fixtures. `Value::Null` in an auto-increment column
    /// is replaced by the counter; explicit values advance the counter.
    pub fn seed(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), DbError> {
        let mut inner = self.inner.lock();
        let idx = inner.table_index(table)?;
        let table_schema = inner
            .schema
            .table(table)
            .ok_or_else(|| DbError::UnknownTable(table.into()))?;
        let auto_cols: Vec<usize> = table_schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.auto_increment)
            .map(|(i, _)| i)
            .collect();
        let ncols = table_schema.columns.len();
        let ts = inner.commit_ts;
        for mut row in rows {
            if row.len() != ncols {
                return Err(DbError::Internal(format!(
                    "seed row for {table} has {} values, schema has {ncols} columns",
                    row.len()
                )));
            }
            for &i in &auto_cols {
                match &row[i] {
                    Value::Null => {
                        let v = inner.tables[idx].next_auto();
                        row[i] = Value::Int(v);
                    }
                    Value::Int(v) => {
                        let v = *v;
                        if v >= inner.tables[idx].auto_counter {
                            inner.tables[idx].auto_counter = v + 1;
                        }
                    }
                    _ => {}
                }
            }
            inner.tables[idx].rows.push(crate::storage::RowSlot {
                versions: vec![RowVersion::committed(row, ts)],
            });
        }
        Ok(())
    }

    /// Latest-committed contents of a table (for invariant checking).
    pub fn table_rows(&self, table: &str) -> Result<Vec<Vec<Value>>, DbError> {
        let inner = self.inner.lock();
        let idx = inner.table_index(table)?;
        let view = ReadView::Snapshot {
            as_of: inner.commit_ts,
            txn: TxnId(u64::MAX),
        };
        Ok(inner.tables[idx]
            .rows
            .iter()
            .filter_map(|slot| view.visible_version(slot))
            .map(|v| v.values.clone())
            .collect())
    }

    /// The schema this database was created with.
    pub fn schema(&self) -> Schema {
        self.inner.lock().schema.clone()
    }

    /// Snapshot of the general query log.
    pub fn log_entries(&self) -> Vec<LogEntry> {
        self.inner.lock().log.entries().to_vec()
    }

    /// Drain the general query log.
    pub fn take_log(&self) -> Vec<LogEntry> {
        self.inner.lock().log.take()
    }

    /// Number of transactions currently active (diagnostics).
    pub fn active_transactions(&self) -> usize {
        self.inner.lock().txns.len()
    }
}

/// A session against a [`Database`]. Connections are single-threaded and
/// carry MySQL-style session state: autocommit flag, the open transaction
/// (if any), the session isolation level, and the API-call tag applied to
/// logged statements.
pub struct Connection {
    db: Arc<Database>,
    session: u64,
    isolation: IsolationLevel,
    txn: Option<TxnId>,
    /// Whether the open transaction was started implicitly for autocommit
    /// statements (vs `BEGIN` / `SET autocommit=0`).
    txn_implicit: bool,
    autocommit: bool,
    api: Option<ApiTag>,
}

impl Connection {
    pub fn session_id(&self) -> u64 {
        self.session
    }

    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Set the isolation level used by subsequently started transactions.
    pub fn set_isolation(&mut self, level: IsolationLevel) {
        self.isolation = level;
    }

    /// Tag subsequent statements as belonging to the given API call.
    pub fn set_api(&mut self, name: impl Into<String>, invocation: u64) {
        self.api = Some(ApiTag {
            name: name.into(),
            invocation,
        });
    }

    pub fn clear_api(&mut self) {
        self.api = None;
    }

    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// The id of the currently open transaction, if any.
    pub fn current_txn(&self) -> Option<TxnId> {
        self.txn
    }

    /// Execute a statement, waiting (with timeout) for locks. A lock wait
    /// that exceeds [`Database::lock_wait_timeout`] rolls the whole
    /// transaction back and surfaces as [`DbError::LockTimeout`], so a
    /// stalled session can never wedge others by holding its locks.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        let stmt = parse_statement(sql)?;
        let timeout = self.db.lock_wait_timeout();
        let db = Arc::clone(&self.db);
        let mut guard = db.inner.lock();
        loop {
            match self.apply(&mut guard, &stmt, sql) {
                Err(DbError::WouldBlock { .. }) => {
                    let timed_out = self.db.released.wait_for(&mut guard, timeout).timed_out();
                    if timed_out {
                        if let Some(t) = self.txn.take() {
                            guard.rollback(t);
                        }
                        self.txn_implicit = false;
                        guard.log.append_with(
                            self.session,
                            self.api.clone(),
                            sql,
                            StmtOutcome::Aborted,
                        );
                        drop(guard);
                        // The rollback released this session's locks.
                        self.db.released.notify_all();
                        return Err(DbError::LockTimeout);
                    }
                }
                other => {
                    drop(guard);
                    self.db.released.notify_all();
                    return other;
                }
            }
        }
    }

    /// Execute a statement without waiting: lock conflicts surface as
    /// [`DbError::WouldBlock`] and the statement can be retried verbatim.
    pub fn try_execute(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        let stmt = parse_statement(sql)?;
        let db = Arc::clone(&self.db);
        let mut guard = db.inner.lock();
        let result = self.apply(&mut guard, &stmt, sql);
        drop(guard);
        if !matches!(result, Err(DbError::WouldBlock { .. })) {
            self.db.released.notify_all();
        }
        result
    }

    /// Convenience: execute and return the first value of the first row.
    pub fn query_scalar(&mut self, sql: &str) -> Result<Option<Value>, DbError> {
        Ok(self.execute(sql)?.scalar().cloned())
    }

    /// Convenience: execute and return the first value as i64 (0 when the
    /// result is empty or non-numeric).
    pub fn query_i64(&mut self, sql: &str) -> Result<i64, DbError> {
        Ok(self.execute(sql)?.scalar_i64().unwrap_or(0))
    }

    /// Roll back any open transaction (e.g. on application error paths).
    pub fn rollback_open(&mut self) {
        let _ = self.execute("ROLLBACK");
    }

    /// Draw from the database's fault-injector latency channel: `base`
    /// plus this session's next deterministic jitter value. With the
    /// channel unconfigured, returns `base` unchanged. Harness wrappers
    /// use this instead of sleeping a raw fixed duration.
    pub fn jittered_delay(&self, base: Duration) -> Duration {
        self.db
            .inner
            .lock()
            .faults
            .draw_latency(self.session, base)
    }

    /// One attempt at executing `stmt` under the held database lock.
    fn apply(
        &mut self,
        inner: &mut DbInner,
        stmt: &Statement,
        raw: &str,
    ) -> Result<ResultSet, DbError> {
        // Fault decision for this attempt. Data-statement faults ride into
        // the executor (so injected aborts share the organic rollback
        // path); a connection drop kills the session state right here,
        // whatever the statement was.
        let is_data = !matches!(
            stmt,
            Statement::Begin
                | Statement::Commit
                | Statement::Rollback
                | Statement::SetAutocommit(_)
        );
        let injected = inner.faults.next_fault(self.session, is_data);
        if injected == Some(InjectedFault::ConnectionDrop) {
            if let Some(t) = self.txn.take() {
                inner.rollback(t);
            }
            self.txn_implicit = false;
            self.log_with(inner, raw, StmtOutcome::Aborted);
            return Err(DbError::ConnectionDropped);
        }
        match stmt {
            Statement::Begin => {
                if let Some(t) = self.txn.take() {
                    // MySQL implicitly commits an open transaction on BEGIN.
                    inner.commit(t);
                }
                let t = inner.begin(self.isolation, false);
                self.txn = Some(t);
                self.txn_implicit = false;
                self.log(inner, raw);
                Ok(ResultSet::empty())
            }
            Statement::Commit => {
                if let Some(t) = self.txn.take() {
                    inner.commit(t);
                }
                self.log(inner, raw);
                Ok(ResultSet::empty())
            }
            Statement::Rollback => {
                if let Some(t) = self.txn.take() {
                    inner.rollback(t);
                }
                self.log(inner, raw);
                Ok(ResultSet::empty())
            }
            Statement::SetAutocommit(on) => {
                if *on {
                    if let Some(t) = self.txn.take() {
                        inner.commit(t);
                    }
                }
                self.autocommit = *on;
                self.log(inner, raw);
                Ok(ResultSet::empty())
            }
            data_stmt => {
                let txn = match self.txn {
                    Some(t) => t,
                    None => {
                        let t = inner.begin(self.isolation, self.autocommit);
                        self.txn = Some(t);
                        self.txn_implicit = self.autocommit;
                        t
                    }
                };
                match exec::execute(inner, txn, data_stmt, injected) {
                    Ok(rs) => {
                        self.log(inner, raw);
                        if self.txn_implicit {
                            inner.commit(txn);
                            self.txn = None;
                            self.txn_implicit = false;
                        }
                        Ok(rs)
                    }
                    Err(e) if e.aborts_transaction() => {
                        // exec already rolled the transaction back. Log the
                        // aborted attempt so 2AD lifting can discard the
                        // transaction's prior statements.
                        self.txn = None;
                        self.txn_implicit = false;
                        self.log_with(inner, raw, StmtOutcome::Aborted);
                        Err(e)
                    }
                    Err(DbError::WouldBlock { holders }) => {
                        // Keep the transaction (and its locks); the
                        // statement had no effects and is retried verbatim,
                        // so it is not logged.
                        Err(DbError::WouldBlock { holders })
                    }
                    Err(e) => {
                        // Statement-level failure: an explicit transaction
                        // stays open (MySQL semantics); an implicit one is
                        // rolled back.
                        if self.txn_implicit {
                            inner.rollback(txn);
                            self.txn = None;
                            self.txn_implicit = false;
                        }
                        self.log_with(inner, raw, StmtOutcome::Failed);
                        Err(e)
                    }
                }
            }
        }
    }

    fn log(&self, inner: &mut DbInner, sql: &str) {
        inner.log.append(self.session, self.api.clone(), sql);
    }

    fn log_with(&self, inner: &mut DbInner, sql: &str, outcome: StmtOutcome) {
        inner
            .log
            .append_with(self.session, self.api.clone(), sql, outcome);
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        if let Some(t) = self.txn.take() {
            self.db.inner.lock().rollback(t);
            self.db.released.notify_all();
        }
    }
}
