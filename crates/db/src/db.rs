//! The database object, connections, and transaction lifecycle.
//!
//! A [`Database`] is a set of layered, independently synchronized
//! subsystems — per-table-latched storage with an atomic commit clock, a
//! lock manager behind its own mutex/condvar, a sharded query log, and
//! atomics for session/config state — so statements from different
//! sessions execute genuinely concurrently. Each *statement* is still
//! atomic: it pins (latches) the tables it touches for its duration, so
//! every concurrency phenomenon in this substrate arises from the
//! *interleaving of statements across transactions* — exactly the
//! granularity at which the paper's anomalies live. See DESIGN.md §8 for
//! the latch hierarchy and lock ordering rules.
//!
//! Lock waits surface as [`DbError::WouldBlock`] from
//! [`Connection::try_execute`], letting the deterministic scheduler in
//! `acidrain-harness` decide what runs next; [`Connection::execute`] is the
//! blocking flavour used by threaded stress tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acidrain_obs::{MetricsReport, Obs, ProbeOutcome, TraceEvent};
use acidrain_sql::schema::Schema;
use acidrain_sql::{parse_statement, Statement};
use parking_lot::Mutex;

use crate::error::DbError;
use crate::exec;
use crate::fault::{FaultConfig, FaultHandle, FaultStats, InjectedFault};
use crate::isolation::IsolationLevel;
use crate::lock::LockTable;
use crate::log::{ApiTag, LogEntry, QueryLog, StmtOutcome};
use crate::result::ResultSet;
use crate::storage::{GcStats, ReadView, RowVersion, Storage, TableData};
use crate::txn::{TxnId, TxnState};
use crate::value::Value;
use crate::wal::{self, RecoveryInfo, Wal, WalConfig};

/// Default for how long a blocking [`Connection::execute`] waits on a lock
/// before giving up (InnoDB's `innodb_lock_wait_timeout` analogue).
/// Override per database with [`Database::set_lock_wait_timeout`]. On
/// timeout the whole transaction is rolled back
/// (`innodb_rollback_on_timeout=ON` semantics), so a timed-out session
/// never wedges other sessions by sitting on its locks.
const DEFAULT_LOCK_WAIT_TIMEOUT: Duration = Duration::from_secs(10);

/// Default number of writing commits between automatic version-GC passes.
/// Frequent enough to keep chains bounded under sustained update streams,
/// rare enough that the per-commit amortized cost is negligible.
const DEFAULT_GC_INTERVAL: u64 = 128;

/// A multi-version transactional database with configurable isolation.
///
/// No global mutex: `storage`, `locks`, `log`, and `faults` synchronize
/// independently, and the scalar configuration/counter fields are atomics.
/// Transaction state lives in the owning [`Connection`], not in a shared
/// map.
pub struct Database {
    /// Immutable after construction; read freely without synchronization.
    pub(crate) schema: Schema,
    pub(crate) storage: Storage,
    pub(crate) locks: LockTable,
    pub(crate) log: QueryLog,
    pub(crate) faults: FaultHandle,
    /// Observability registry shared by every subsystem probe. Disabled by
    /// default: each probe then costs a single relaxed atomic load.
    pub(crate) obs: Obs,
    /// Dense [`IsolationLevel`] code (index into `IsolationLevel::ALL`).
    default_isolation: AtomicU8,
    next_session: AtomicU64,
    next_txn: AtomicU64,
    /// Sessions currently open (incremented on connect, decremented when a
    /// [`Connection`] drops). The admission-control denominator.
    open_sessions: AtomicUsize,
    /// Admission-control ceiling for [`Database::try_connect`]
    /// (0 = unlimited). Plain [`Database::connect`] is exempt: in-process
    /// fixtures and tests must never be refused.
    max_sessions: AtomicUsize,
    /// Number of transactions currently active (diagnostics).
    active_txns: AtomicUsize,
    /// Lock-wait timeout in nanoseconds.
    lock_wait_timeout_nanos: AtomicU64,
    /// Whether statements may route point lookups through the equality
    /// indexes (on by default). The indexes are always *maintained*; this
    /// flag only gates the read path, so it can be toggled at any time —
    /// results are identical either way.
    use_indexes: AtomicBool,
    /// Whether statements may route range predicates through the ordered
    /// indexes (on by default; same maintained-always, read-path-only
    /// contract as `use_indexes`).
    use_range_indexes: AtomicBool,
    /// GC pin registry: snapshot timestamp → number of active
    /// transaction-long snapshots (MySQL-RR, SI) pinned at it. The GC
    /// bound is computed under this mutex and pins are registered under
    /// it, so a concurrent pass can never slip between a transaction's
    /// clock read and its registration. Statement-scope snapshots are
    /// protected by the table latches instead (GC prunes under the write
    /// latch). Leaf lock: never held while acquiring a latch.
    pinned_snapshots: Mutex<BTreeMap<u64, usize>>,
    /// Writing commits between automatic GC passes (0 disables auto-GC).
    gc_interval: AtomicU64,
    /// Writing commits since the last automatic GC pass.
    commits_since_gc: AtomicU64,
    /// WAL log-size threshold (bytes) past which a commit triggers an
    /// automatic checkpoint; 0 disables the trigger.
    auto_checkpoint_bytes: AtomicU64,
    /// Guard so concurrent commits don't stack up behind one in-flight
    /// automatic checkpoint.
    checkpoint_in_progress: AtomicBool,
    /// Attached write-ahead log, if durability was enabled via
    /// [`Database::attach_wal`] / [`Database::recover`]. Behind a mutex
    /// only for attach-time interior mutability; the hot commit path gates
    /// on `wal_attached` first so the unattached case costs one atomic
    /// load.
    wal: Mutex<Option<Arc<Wal>>>,
    /// Fast-path flag mirroring `wal.is_some()`.
    wal_attached: AtomicBool,
}

impl Database {
    /// Create a database for `schema` with the given default isolation
    /// level for new connections.
    pub fn new(schema: Schema, default_isolation: IsolationLevel) -> Arc<Self> {
        let tables = schema
            .tables()
            .map(|t| TableData::new(t.name.clone(), t.index_backed_columns()))
            .collect();
        let obs = Obs::with_level_names(
            IsolationLevel::ALL
                .iter()
                .map(|l| l.name().to_string())
                .collect(),
        );
        Arc::new(Database {
            schema,
            storage: Storage::new(tables),
            locks: LockTable::with_obs(obs.clone()),
            log: QueryLog::with_obs(obs.clone()),
            faults: FaultHandle::with_obs(obs.clone()),
            obs,
            default_isolation: AtomicU8::new(default_isolation.code()),
            next_session: AtomicU64::new(0),
            next_txn: AtomicU64::new(0),
            open_sessions: AtomicUsize::new(0),
            max_sessions: AtomicUsize::new(0),
            active_txns: AtomicUsize::new(0),
            lock_wait_timeout_nanos: AtomicU64::new(DEFAULT_LOCK_WAIT_TIMEOUT.as_nanos() as u64),
            use_indexes: AtomicBool::new(true),
            use_range_indexes: AtomicBool::new(true),
            pinned_snapshots: Mutex::new(BTreeMap::new()),
            gc_interval: AtomicU64::new(DEFAULT_GC_INTERVAL),
            commits_since_gc: AtomicU64::new(0),
            auto_checkpoint_bytes: AtomicU64::new(0),
            checkpoint_in_progress: AtomicBool::new(false),
            wal: Mutex::new(None),
            wal_attached: AtomicBool::new(false),
        })
    }

    /// Install (or replace) the fault injector configuration. Resets the
    /// injector's per-session counters and statistics.
    pub fn enable_faults(&self, config: FaultConfig) {
        self.faults.reconfigure(config);
    }

    /// Turn fault injection off (counters and statistics reset).
    pub fn disable_faults(&self) {
        self.faults.reconfigure(FaultConfig::disabled());
    }

    /// Snapshot of the fault injector's counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }

    /// Whether the injector's latency channel is configured.
    pub fn latency_faults_enabled(&self) -> bool {
        self.faults.latency_enabled()
    }

    /// The observability handle every engine probe reports into. Cheap to
    /// clone; see [`acidrain_obs`] for the probe contract.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Start recording metrics (histograms, counters, gauges). Off by
    /// default; while off, every probe site costs one relaxed atomic load.
    /// Probes sit strictly *after* the engine's deterministic decision
    /// points, so toggling this never changes execution results.
    pub fn enable_metrics(&self) {
        self.obs.enable();
    }

    /// Stop recording metrics (already-recorded data is kept).
    pub fn disable_metrics(&self) {
        self.obs.disable();
    }

    /// Whether metrics recording is on.
    pub fn metrics_enabled(&self) -> bool {
        self.obs.is_enabled()
    }

    /// Merge every shard into a point-in-time [`MetricsReport`].
    pub fn metrics_report(&self) -> MetricsReport {
        self.obs.report()
    }

    /// Toggle span-style transaction tracing (requires metrics to be
    /// enabled for spans to be captured).
    pub fn set_tracing(&self, on: bool) {
        self.obs.set_tracing(on);
    }

    /// Drain the captured trace spans in start-time order. Render with
    /// [`acidrain_obs::trace_json`] or [`acidrain_obs::trace_chrome_json`].
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.obs.take_trace()
    }

    /// Set how long blocking [`Connection::execute`] calls wait on a lock
    /// before the transaction is rolled back with
    /// [`DbError::LockTimeout`]. The harness watchdog clamps this so hung
    /// lock waits degrade to reported timeouts instead of stalling runs.
    pub fn set_lock_wait_timeout(&self, timeout: Duration) {
        self.lock_wait_timeout_nanos
            .store(timeout.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Current lock-wait timeout for blocking `execute` calls.
    pub fn lock_wait_timeout(&self) -> Duration {
        Duration::from_nanos(self.lock_wait_timeout_nanos.load(Ordering::Relaxed))
    }

    /// Number of currently locked resources (diagnostics: must drop to
    /// zero once every transaction has committed or rolled back).
    pub fn locked_resources(&self) -> usize {
        self.locks.locked_resources()
    }

    /// Number of transaction-long snapshots currently pinned in the GC
    /// registry (diagnostics: must drop to zero once every MySQL-RR/SI
    /// transaction has committed or rolled back — a nonzero residue here
    /// means a vanished session leaked its pin and version GC is stalled
    /// at that timestamp).
    pub fn pinned_snapshots(&self) -> usize {
        self.pinned_snapshots.lock().len()
    }

    /// Enable or disable the equality-index read path. The per-table
    /// indexes are always maintained; when off, every statement takes the
    /// full-scan route. Because index candidates are iterated in the same
    /// ascending slot order the full scan uses — and every candidate still
    /// passes through normal visibility and predicate evaluation — results,
    /// lock acquisition order, abstract histories, and seeded chaos digests
    /// are identical in both modes. On by default; turned off by benchmarks
    /// to measure the scan baseline and by CI to assert the invariance.
    pub fn set_use_indexes(&self, on: bool) {
        self.use_indexes.store(on, Ordering::Relaxed);
    }

    /// Whether the equality-index read path is enabled.
    pub fn use_indexes(&self) -> bool {
        self.use_indexes.load(Ordering::Relaxed)
    }

    /// Enable or disable the ordered-index (range-predicate) read path.
    /// The per-table ordered maps are always maintained; when off, range
    /// predicates fall back to full scans. Candidates come back in the
    /// same ascending slot order the full scan uses and are re-verified by
    /// normal predicate evaluation, so results, lock acquisition order,
    /// abstract histories, and seeded chaos digests are identical in both
    /// modes. On by default; turned off by benchmarks to measure the scan
    /// baseline and by CI to assert the invariance.
    pub fn set_use_range_indexes(&self, on: bool) {
        self.use_range_indexes.store(on, Ordering::Relaxed);
    }

    /// Whether the ordered-index (range-predicate) read path is enabled.
    pub fn use_range_indexes(&self) -> bool {
        self.use_range_indexes.load(Ordering::Relaxed)
    }

    /// Set how many writing commits elapse between automatic version-GC
    /// passes (0 disables the automatic trigger; [`Database::gc`] can
    /// still be called directly). Default: one pass every 128 commits.
    pub fn set_gc_interval(&self, commits: u64) {
        self.gc_interval.store(commits, Ordering::Relaxed);
    }

    /// Garbage-collect superseded row versions now.
    ///
    /// The reclamation bound is the oldest snapshot any current or future
    /// reader can use: the minimum of the registered transaction-long
    /// snapshots and the current commit clock, taken under the pin
    /// registry's mutex so no concurrent pin can race below it. Versions
    /// whose end stamp is committed at or before the bound are invisible
    /// to every such snapshot and are pruned (with their index entries);
    /// chains still carrying an uncommitted transaction tag are left
    /// untouched. Callers must hold no table latches.
    pub fn gc(&self) -> GcStats {
        let oldest = {
            let pins = self.pinned_snapshots.lock();
            let clock = self.storage.commit_ts();
            pins.keys().next().map_or(clock, |p| (*p).min(clock))
        };
        let stats = self.storage.prune(oldest);
        self.obs
            .gc_run(stats.reclaimed as u64, oldest, stats.max_chain as u64);
        stats
    }

    /// Census of the version store: `(total live versions, longest chain)`.
    /// Diagnostics for GC tests and soak harnesses.
    pub fn version_stats(&self) -> (usize, usize) {
        self.storage.version_stats()
    }

    /// Automatic-GC trigger, called once per successful writing commit.
    fn maybe_gc(&self) {
        let every = self.gc_interval.load(Ordering::Relaxed);
        if every == 0 {
            return;
        }
        if self.commits_since_gc.fetch_add(1, Ordering::Relaxed) + 1 < every {
            return;
        }
        self.commits_since_gc.store(0, Ordering::Relaxed);
        self.gc();
    }

    /// Fire [`Database::checkpoint`] automatically whenever a writing
    /// commit observes the WAL's log section above `bytes` (0 disables).
    /// Requires an attached WAL to have any effect.
    pub fn set_auto_checkpoint(&self, bytes: u64) {
        self.auto_checkpoint_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Auto-checkpoint trigger, called once per successful writing commit.
    /// Failures are swallowed: the commit was already acknowledged as
    /// durable, and a checkpoint-killing fault leaves the WAL dead, which
    /// every subsequent writing commit surfaces on its own.
    fn maybe_auto_checkpoint(&self) {
        let threshold = self.auto_checkpoint_bytes.load(Ordering::Relaxed);
        if threshold == 0 {
            return;
        }
        let Some(wal) = self.wal() else {
            return;
        };
        if wal.log_bytes() < threshold {
            return;
        }
        if self.checkpoint_in_progress.swap(true, Ordering::Acquire) {
            return;
        }
        let _ = self.checkpoint();
        self.checkpoint_in_progress.store(false, Ordering::Release);
    }

    /// Change the default isolation level handed to future connections.
    pub fn set_default_isolation(&self, level: IsolationLevel) {
        self.default_isolation
            .store(level.code(), Ordering::Relaxed);
    }

    /// The isolation level handed to new connections.
    pub fn default_isolation(&self) -> IsolationLevel {
        IsolationLevel::from_code(self.default_isolation.load(Ordering::Relaxed))
    }

    /// Attach a write-ahead log: every subsequent writing commit appends
    /// its redo record (inside the commit critical section, so WAL order
    /// is commit order) and is acknowledged only once durable — via its
    /// own fsync in per-commit mode, or a shared group-commit fsync by
    /// default. Opening an existing log repairs any torn tail so appends
    /// resume at a valid record boundary; it does **not** replay old
    /// records into storage — use [`Database::recover`] on a fresh engine
    /// for that. Errors if a WAL is already attached.
    pub fn attach_wal(&self, config: WalConfig) -> Result<(), DbError> {
        let mut slot = self.wal.lock();
        if slot.is_some() {
            return Err(DbError::Internal("a WAL is already attached".into()));
        }
        let opened = Wal::open(config, self.obs.clone())?;
        *slot = Some(Arc::new(opened));
        self.wal_attached.store(true, Ordering::Release);
        Ok(())
    }

    /// Whether a WAL is attached.
    pub fn wal_attached(&self) -> bool {
        self.wal_attached.load(Ordering::Acquire)
    }

    /// Whether the attached WAL was killed by an injected crash point (or
    /// a real I/O failure). A dead log fails every subsequent writing
    /// commit with [`DbError::Io`]; the on-disk state is exactly what a
    /// `kill -9` at that point would have left, ready for
    /// [`Database::recover`].
    pub fn wal_crashed(&self) -> bool {
        self.wal().is_some_and(|w| w.is_dead())
    }

    /// Checkpoint: freeze the commit clock, snapshot every table's
    /// committed state to `snapshot.bin` (atomic tmp-file + rename), and
    /// truncate the log. Requires an attached WAL.
    pub fn checkpoint(&self) -> Result<(), DbError> {
        let wal = self
            .wal()
            .ok_or_else(|| DbError::Internal("checkpoint requires an attached WAL".into()))?;
        self.storage.with_commit_frozen(|| {
            let ts = self.storage.commit_ts();
            let snapshot = wal::encode_snapshot(&self.storage, ts);
            wal.checkpoint(&snapshot, &self.faults)
        })
    }

    /// ARIES-lite restart from the durable state under `config.dir`:
    /// install the snapshot (if one exists), replay the WAL tail, discard
    /// (and truncate off) any torn trailing bytes, advance the commit
    /// clock, and attach the repaired log for continued operation.
    ///
    /// Must be called on a freshly built engine in the same pre-crash
    /// state the crashed instance started from (same schema, same seeded
    /// fixtures) before any connections run statements.
    pub fn recover(&self, config: WalConfig) -> Result<RecoveryInfo, DbError> {
        if self.wal_attached() {
            return Err(DbError::Internal(
                "recover must run before a WAL is attached".into(),
            ));
        }
        let info = wal::recover_into(&self.storage, &config)?;
        self.attach_wal(config)?;
        Ok(info)
    }

    fn wal(&self) -> Option<Arc<Wal>> {
        if !self.wal_attached.load(Ordering::Acquire) {
            return None;
        }
        self.wal.lock().clone()
    }

    /// Open a new session. Never refused: in-process callers (fixtures,
    /// tests, the harness scheduler) are exempt from admission control.
    /// Front ends that must bound their session population use
    /// [`Database::try_connect`] instead.
    pub fn connect(self: &Arc<Self>) -> Connection {
        self.open_sessions.fetch_add(1, Ordering::AcqRel);
        self.new_connection()
    }

    /// Open a new session subject to admission control: fails with
    /// [`DbError::TooManySessions`] when [`Database::open_sessions`] has
    /// reached the [`Database::set_max_sessions`] ceiling. The slot is
    /// reserved atomically (compare-and-swap on the open-session counter),
    /// so concurrent acceptors can never over-admit past the limit.
    pub fn try_connect(self: &Arc<Self>) -> Result<Connection, DbError> {
        let max = self.max_sessions.load(Ordering::Relaxed);
        let mut open = self.open_sessions.load(Ordering::Acquire);
        loop {
            if max != 0 && open >= max {
                return Err(DbError::TooManySessions);
            }
            match self.open_sessions.compare_exchange_weak(
                open,
                open + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(self.new_connection()),
                Err(actual) => open = actual,
            }
        }
    }

    /// Cap the number of simultaneously open sessions admitted through
    /// [`Database::try_connect`] (0 = unlimited, the default).
    pub fn set_max_sessions(&self, max: usize) {
        self.max_sessions.store(max, Ordering::Relaxed);
    }

    /// The admission-control ceiling (0 = unlimited).
    pub fn max_sessions(&self) -> usize {
        self.max_sessions.load(Ordering::Relaxed)
    }

    /// Number of sessions currently open (connections not yet dropped).
    pub fn open_sessions(&self) -> usize {
        self.open_sessions.load(Ordering::Acquire)
    }

    fn new_connection(self: &Arc<Self>) -> Connection {
        let session = self.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        Connection {
            db: Arc::clone(self),
            session,
            isolation: self.default_isolation(),
            txn: None,
            txn_implicit: false,
            autocommit: true,
            api: None,
        }
    }

    /// Directly install committed rows, bypassing transactions and the
    /// query log — for fixtures. `Value::Null` in an auto-increment column
    /// is replaced by the counter; explicit values advance the counter.
    pub fn seed(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), DbError> {
        let idx = self
            .storage
            .table_index(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        let table_schema = self
            .schema
            .table(table)
            .ok_or_else(|| DbError::UnknownTable(table.into()))?;
        let auto_cols: Vec<usize> = table_schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.auto_increment)
            .map(|(i, _)| i)
            .collect();
        let ncols = table_schema.columns.len();
        let ts = self.storage.commit_ts();
        let mut data = self.storage.write(idx);
        for mut row in rows {
            if row.len() != ncols {
                return Err(DbError::Internal(format!(
                    "seed row for {table} has {} values, schema has {ncols} columns",
                    row.len()
                )));
            }
            for &i in &auto_cols {
                match &row[i] {
                    Value::Null => {
                        let v = data.next_auto();
                        row[i] = Value::Int(v);
                    }
                    Value::Int(v) => {
                        let v = *v;
                        if v >= data.auto_counter {
                            data.auto_counter = v + 1;
                        }
                    }
                    _ => {}
                }
            }
            data.push_row(RowVersion::committed(row, ts));
        }
        Ok(())
    }

    /// Latest-committed contents of a table (for invariant checking).
    pub fn table_rows(&self, table: &str) -> Result<Vec<Vec<Value>>, DbError> {
        let idx = self
            .storage
            .table_index(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        let view = ReadView::Snapshot {
            as_of: self.storage.commit_ts(),
            txn: TxnId(u64::MAX),
        };
        Ok(self
            .storage
            .read(idx)
            .rows
            .iter()
            .filter_map(|slot| view.visible_version(slot))
            .map(|v| v.values.clone())
            .collect())
    }

    /// The schema this database was created with.
    pub fn schema(&self) -> Schema {
        self.schema.clone()
    }

    /// Snapshot of the general query log (merged sequence order).
    pub fn log_entries(&self) -> Vec<LogEntry> {
        self.log.entries()
    }

    /// Drain the general query log.
    pub fn take_log(&self) -> Vec<LogEntry> {
        self.log.take()
    }

    /// Number of transactions currently active (diagnostics).
    pub fn active_transactions(&self) -> usize {
        self.active_txns.load(Ordering::Acquire)
    }

    /// Start a transaction; the returned state is owned by the calling
    /// connection.
    pub(crate) fn begin_txn(&self, isolation: IsolationLevel, implicit: bool) -> TxnState {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed) + 1);
        self.active_txns.fetch_add(1, Ordering::AcqRel);
        TxnState::new(id, isolation, implicit).with_timer(self.obs.timer())
    }

    /// Commit a transaction: publish its versions (if it wrote anything),
    /// then release its locks and wake waiters. With a WAL attached, a
    /// writing commit appends its redo record inside the commit critical
    /// section and returns only once the record is durable (group-commit
    /// fsync by default); read-only transactions skip the log entirely.
    /// On a durability failure ([`DbError::Io`] — the log is dead) the
    /// commit is not acknowledged, but locks are still released and the
    /// transaction is closed so the session can observe the failure
    /// without wedging others.
    pub(crate) fn commit_txn(&self, session: u64, state: TxnState) -> Result<(), DbError> {
        let wrote = !state.undo.is_empty();
        let result = if !wrote {
            Ok(())
        } else {
            match self.wal() {
                None => {
                    self.storage.publish_commit(state.id, &state.undo);
                    Ok(())
                }
                Some(wal) => self
                    .storage
                    .publish_commit_logged(state.id, &state.undo, |ts, ops| {
                        wal.append(session, ts, state.id, ops, &self.faults)
                    })
                    .and_then(|lsn| wal.sync_to(lsn, session, &self.faults)),
            }
        };
        self.unpin_snapshot(&state);
        // Read-only fast path: a transaction that never touched the lock
        // manager has nothing to release and skips its global mutex — the
        // last serialization point on the pure-read path.
        if state.locks_taken.get() {
            self.locks.release_all(state.id);
        }
        self.active_txns.fetch_sub(1, Ordering::AcqRel);
        self.obs.commit_clock(self.storage.commit_ts());
        self.obs.txn_finished(
            session,
            state.id.0,
            state.isolation.code(),
            result.is_ok(),
            state.timer,
            state.isolation.name(),
        );
        if wrote && result.is_ok() {
            self.maybe_gc();
            self.maybe_auto_checkpoint();
        }
        result
    }

    /// Roll a transaction back: undo its versions, release its locks, wake
    /// waiters.
    pub(crate) fn rollback_txn(&self, session: u64, state: TxnState) {
        self.storage.rollback(state.id, &state.undo);
        self.unpin_snapshot(&state);
        if state.locks_taken.get() {
            self.locks.release_all(state.id);
        }
        self.active_txns.fetch_sub(1, Ordering::AcqRel);
        self.obs.txn_finished(
            session,
            state.id.0,
            state.isolation.code(),
            false,
            state.timer,
            state.isolation.name(),
        );
    }

    /// Drop the transaction's GC pin, if it registered one.
    fn unpin_snapshot(&self, state: &TxnState) {
        if let Some(ts) = state.pinned_snapshot {
            let mut pins = self.pinned_snapshots.lock();
            if let Some(n) = pins.get_mut(&ts) {
                *n -= 1;
                if *n == 0 {
                    pins.remove(&ts);
                }
            }
        }
    }

    /// The snapshot timestamp a transaction's plain reads use, pinning the
    /// transaction-long snapshot on first use for MySQL-RR and SI. The pin
    /// is registered with the GC under the registry mutex — the clock is
    /// read under the same mutex the GC bound is computed under, so the
    /// bound can never pass an in-flight pin.
    pub(crate) fn read_snapshot_ts(&self, state: &mut TxnState) -> u64 {
        if state.isolation.uses_txn_snapshot() {
            if let Some(ts) = state.snapshot_ts {
                return ts;
            }
            let commit_ts = {
                let mut pins = self.pinned_snapshots.lock();
                let commit_ts = self.storage.commit_ts();
                *pins.entry(commit_ts).or_insert(0) += 1;
                commit_ts
            };
            state.snapshot_ts = Some(commit_ts);
            state.pinned_snapshot = Some(commit_ts);
            commit_ts
        } else {
            let commit_ts = self.storage.commit_ts();
            state.snapshot_ts = Some(commit_ts);
            commit_ts
        }
    }

    /// A current-read view: latest committed state plus own writes.
    pub(crate) fn current_read(&self, txn: TxnId) -> ReadView {
        ReadView::Snapshot {
            as_of: self.storage.commit_ts(),
            txn,
        }
    }
}

/// A session against a [`Database`]. Connections are single-threaded and
/// carry MySQL-style session state: autocommit flag, the open transaction
/// (if any — owned here, not in a shared registry), the session isolation
/// level, and the API-call tag applied to logged statements.
pub struct Connection {
    db: Arc<Database>,
    session: u64,
    isolation: IsolationLevel,
    txn: Option<TxnState>,
    /// Whether the open transaction was started implicitly for autocommit
    /// statements (vs `BEGIN` / `SET autocommit=0`).
    txn_implicit: bool,
    autocommit: bool,
    api: Option<ApiTag>,
}

impl Connection {
    /// This connection's session id (unique per database).
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Isolation level used by subsequently started transactions.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Set the isolation level used by subsequently started transactions.
    pub fn set_isolation(&mut self, level: IsolationLevel) {
        self.isolation = level;
    }

    /// Tag subsequent statements as belonging to the given API call.
    pub fn set_api(&mut self, name: impl Into<String>, invocation: u64) {
        self.api = Some(ApiTag {
            name: name.into(),
            invocation,
        });
    }

    /// Stop tagging statements with an API call.
    pub fn clear_api(&mut self) {
        self.api = None;
    }

    /// Whether an explicit or implicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// The id of the currently open transaction, if any.
    pub fn current_txn(&self) -> Option<TxnId> {
        self.txn.as_ref().map(|state| state.id)
    }

    /// Execute a statement, waiting (with timeout) for locks. A lock wait
    /// that exceeds [`Database::lock_wait_timeout`] rolls the whole
    /// transaction back and surfaces as [`DbError::LockTimeout`], so a
    /// stalled session can never wedge others by holding its locks.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        let stmt = parse_statement(sql)?;
        // One deadline for the whole statement, set at the first block:
        // a statement repeatedly woken and re-blocked (its lock claimed
        // by another session each time) shares the budget across parks
        // instead of restarting the clock, so the total wait is bounded.
        let mut deadline: Option<Instant> = None;
        loop {
            match self.apply(&stmt, sql) {
                Err(DbError::WouldBlock { .. }) => {
                    let txn_id = self
                        .current_txn()
                        .expect("blocked statement leaves its transaction open");
                    let deadline = *deadline
                        .get_or_insert_with(|| Instant::now() + self.db.lock_wait_timeout());
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    let token = self.db.obs.lock_wait_start();
                    let timed_out =
                        remaining.is_zero() || self.db.locks.wait_for_release(txn_id, remaining);
                    self.db
                        .obs
                        .lock_wait_finished(token, self.session, txn_id.0, timed_out);
                    if timed_out {
                        if let Some(state) = self.txn.take() {
                            self.db.rollback_txn(self.session, state);
                        }
                        self.txn_implicit = false;
                        self.log_with(sql, StmtOutcome::Aborted);
                        return Err(DbError::LockTimeout);
                    }
                }
                other => return other,
            }
        }
    }

    /// Execute a statement without waiting: lock conflicts surface as
    /// [`DbError::WouldBlock`] and the statement can be retried verbatim.
    pub fn try_execute(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        let stmt = parse_statement(sql)?;
        self.apply(&stmt, sql)
    }

    /// Convenience: execute and return the first value of the first row.
    pub fn query_scalar(&mut self, sql: &str) -> Result<Option<Value>, DbError> {
        Ok(self.execute(sql)?.scalar().cloned())
    }

    /// Convenience: execute and return the first value as i64 (0 when the
    /// result is empty or non-numeric).
    pub fn query_i64(&mut self, sql: &str) -> Result<i64, DbError> {
        Ok(self.execute(sql)?.scalar_i64().unwrap_or(0))
    }

    /// Roll back any open transaction (e.g. on application error paths).
    pub fn rollback_open(&mut self) {
        let _ = self.execute("ROLLBACK");
    }

    /// Draw from the database's fault-injector latency channel: `base`
    /// plus this session's next deterministic jitter value. With the
    /// channel unconfigured, returns `base` unchanged. Harness wrappers
    /// use this instead of sleeping a raw fixed duration.
    pub fn jittered_delay(&self, base: Duration) -> Duration {
        self.db.faults.draw_latency(self.session, base)
    }

    /// The observability handle of the database this session belongs to
    /// (see [`Database::obs`]).
    pub fn obs(&self) -> &Obs {
        &self.db.obs
    }

    /// One attempt at executing `stmt`, wrapped in the per-statement
    /// observability probe. The probe runs strictly *after* the engine has
    /// decided the attempt's fate, so metrics can never feed back into
    /// execution; blocked attempts are counted but excluded from the
    /// latency histogram (the eventual completed attempt is recorded).
    fn apply(&mut self, stmt: &Statement, raw: &str) -> Result<ResultSet, DbError> {
        let timer = self.db.obs.timer();
        let txn_before = self.current_txn();
        let result = self.apply_inner(stmt, raw);
        let outcome = match &result {
            Ok(_) => ProbeOutcome::Ok,
            Err(DbError::WouldBlock { .. }) => ProbeOutcome::Blocked,
            Err(e) if e.aborts_transaction() => ProbeOutcome::Aborted,
            Err(_) => ProbeOutcome::Failed,
        };
        let txn = txn_before
            .or_else(|| self.current_txn())
            .map_or(0, |id| id.0);
        self.db.obs.statement_finished(
            self.session,
            self.isolation.code(),
            outcome,
            timer,
            txn,
            raw,
        );
        result
    }

    /// One attempt at executing `stmt`. Latches are acquired (and
    /// released) inside the executor; no locks are held across attempts,
    /// so a blocked statement parks in the lock table with nothing pinned.
    fn apply_inner(&mut self, stmt: &Statement, raw: &str) -> Result<ResultSet, DbError> {
        // Fault decision for this attempt. Data-statement faults ride into
        // the executor (so injected aborts share the organic rollback
        // path); a connection drop kills the session state right here,
        // whatever the statement was.
        let is_data = !stmt.is_transaction_control();
        let injected = self.db.faults.next_fault(self.session, is_data);
        if injected == Some(InjectedFault::ConnectionDrop) {
            if let Some(state) = self.txn.take() {
                self.db.rollback_txn(self.session, state);
            }
            self.txn_implicit = false;
            self.log_with(raw, StmtOutcome::Aborted);
            return Err(DbError::ConnectionDropped);
        }
        match stmt {
            Statement::Begin => {
                if let Some(state) = self.txn.take() {
                    // MySQL implicitly commits an open transaction on BEGIN.
                    self.txn_implicit = false;
                    if let Err(e) = self.db.commit_txn(self.session, state) {
                        self.log_with(raw, StmtOutcome::Failed);
                        return Err(e);
                    }
                }
                self.txn = Some(self.db.begin_txn(self.isolation, false));
                self.txn_implicit = false;
                self.log(raw);
                Ok(ResultSet::empty())
            }
            Statement::Commit => {
                if let Some(state) = self.txn.take() {
                    self.txn_implicit = false;
                    if let Err(e) = self.db.commit_txn(self.session, state) {
                        self.log_with(raw, StmtOutcome::Failed);
                        return Err(e);
                    }
                }
                self.log(raw);
                Ok(ResultSet::empty())
            }
            Statement::Rollback => {
                if let Some(state) = self.txn.take() {
                    self.db.rollback_txn(self.session, state);
                }
                self.log(raw);
                Ok(ResultSet::empty())
            }
            Statement::SetAutocommit(on) => {
                if *on {
                    if let Some(state) = self.txn.take() {
                        self.txn_implicit = false;
                        if let Err(e) = self.db.commit_txn(self.session, state) {
                            self.log_with(raw, StmtOutcome::Failed);
                            self.autocommit = true;
                            return Err(e);
                        }
                    }
                }
                self.autocommit = *on;
                self.log(raw);
                Ok(ResultSet::empty())
            }
            Statement::Savepoint(name) => {
                // Inside a transaction: mark the current undo position.
                // Outside one (autocommit), MySQL accepts the statement as
                // a no-op.
                if let Some(state) = self.txn.as_mut() {
                    state.set_savepoint(name);
                }
                self.log(raw);
                Ok(ResultSet::empty())
            }
            Statement::RollbackToSavepoint(name) => {
                let mark = self
                    .txn
                    .as_mut()
                    .and_then(|state| state.rollback_to_savepoint(name));
                match mark {
                    Some(mark) => {
                        let state = self.txn.as_mut().expect("savepoint found in open txn");
                        // Undo everything past the watermark. Row locks
                        // taken since the savepoint are retained until
                        // transaction end (conservative divergence from
                        // InnoDB, which may release them).
                        self.db.storage.rollback(state.id, &state.undo[mark..]);
                        state.undo.truncate(mark);
                        self.log(raw);
                        Ok(ResultSet::empty())
                    }
                    None => {
                        // Statement-level error: the transaction stays open.
                        self.log_with(raw, StmtOutcome::Failed);
                        Err(DbError::UnknownSavepoint(name.clone()))
                    }
                }
            }
            Statement::ReleaseSavepoint(name) => {
                let released = self
                    .txn
                    .as_mut()
                    .is_some_and(|state| state.release_savepoint(name));
                if released {
                    self.log(raw);
                    Ok(ResultSet::empty())
                } else {
                    self.log_with(raw, StmtOutcome::Failed);
                    Err(DbError::UnknownSavepoint(name.clone()))
                }
            }
            data_stmt => {
                if self.txn.is_none() {
                    self.txn = Some(self.db.begin_txn(self.isolation, self.autocommit));
                    self.txn_implicit = self.autocommit;
                }
                let db = Arc::clone(&self.db);
                let state = self.txn.as_mut().expect("transaction just ensured");
                match exec::execute(&db, state, data_stmt, injected) {
                    Ok(rs) => {
                        self.log(raw);
                        if self.txn_implicit {
                            let state = self.txn.take().expect("implicit txn open");
                            self.txn_implicit = false;
                            self.db.commit_txn(self.session, state)?;
                        }
                        Ok(rs)
                    }
                    Err(e) if e.aborts_transaction() => {
                        // Roll the whole transaction back and log the
                        // aborted attempt so 2AD lifting can discard the
                        // transaction's prior statements.
                        let state = self.txn.take().expect("aborting txn open");
                        self.db.rollback_txn(self.session, state);
                        self.txn_implicit = false;
                        self.log_with(raw, StmtOutcome::Aborted);
                        Err(e)
                    }
                    Err(DbError::WouldBlock { holders }) => {
                        // Keep the transaction (and its locks); the
                        // statement had no effects and is retried verbatim,
                        // so it is not logged.
                        Err(DbError::WouldBlock { holders })
                    }
                    Err(e) => {
                        // Statement-level failure: an explicit transaction
                        // stays open (MySQL semantics); an implicit one is
                        // rolled back.
                        if self.txn_implicit {
                            let state = self.txn.take().expect("implicit txn open");
                            self.db.rollback_txn(self.session, state);
                            self.txn_implicit = false;
                        }
                        self.log_with(raw, StmtOutcome::Failed);
                        Err(e)
                    }
                }
            }
        }
    }

    fn log(&self, sql: &str) {
        self.db.log.append(self.session, self.api.clone(), sql);
    }

    fn log_with(&self, sql: &str, outcome: StmtOutcome) {
        self.db
            .log
            .append_with(self.session, self.api.clone(), sql, outcome);
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        if let Some(state) = self.txn.take() {
            // A session that vanishes mid-transaction — dropped in-process
            // handle or a client socket that went away — takes the same
            // path an explicit ROLLBACK would: undo versions, unpin the GC
            // snapshot, release row locks, wake waiters. The synthetic log
            // entry is load-bearing: without an Aborted marker the
            // transaction's prior statements would read as still-open work
            // to 2AD lifting and observed-history analysis, even though
            // every one of their effects was undone.
            self.db.rollback_txn(self.session, state);
            self.txn_implicit = false;
            self.log_with("ROLLBACK", StmtOutcome::Aborted);
        }
        self.db.open_sessions.fetch_sub(1, Ordering::AcqRel);
    }
}
