//! Write-ahead logging, group commit, checkpointing, and ARIES-lite
//! recovery.
//!
//! # Log contents and ordering
//!
//! The engine is a multi-version in-memory store; what must survive a
//! crash is the sequence of *committed* logical writes. Each commit
//! appends one framed record holding the commit timestamp, the committing
//! transaction id, and the redo ops derived from the transaction's undo
//! log at publication time: `WalOp::Create` (a new row version with its
//! values), `WalOp::End` (the visible version of a slot was ended), and
//! `WalOp::AutoInc` (the table's auto-increment watermark). Records are
//! appended *inside the commit critical section*
//! (`Storage::publish_commit_logged`), so WAL order is exactly
//! commit-clock order and replaying records front to back reconstructs
//! every version chain bit-for-bit (rolled-back inserts leave gap slots,
//! which replay materializes as empty [`RowSlot`]s to keep slot indices
//! stable).
//!
//! # Group commit
//!
//! `append` only buffers bytes; durability happens in `Wal::sync_to`,
//! called *after* the commit critical section is released. The first
//! session to need a flush becomes the leader: it takes the whole buffer
//! (its own record plus every record appended by sessions that committed
//! meanwhile), writes and fsyncs it outside the buffer lock, then wakes
//! all waiters — one fsync amortized over the batch. With
//! [`WalConfig::per_commit_fsync`] the fsync instead happens inline in
//! `append`, serializing every commit behind its own flush (the classic
//! cost group commit exists to amortize).
//!
//! # Latching
//!
//! The WAL's two mutexes (`inner` for the buffer/LSN state, `io` for the
//! file) are deliberately *not* registered with [`crate::latch_order`] —
//! they are leaf locks like the fault-injector mutex. Safety argument:
//! `inner` is only acquired from `append`/`checkpoint` (holding
//! `CommitSerial`, rank 0, and nothing else) or from `sync_to` (holding
//! nothing); `io` is only acquired either by a flush leader that holds
//! *neither* `inner` nor any registered latch, or by an `inner` holder
//! after observing `flushing == false` (so no leader can hold `io`).
//! Neither mutex is ever held while acquiring a registered latch, so no
//! cycle through the registered hierarchy is possible.
//!
//! # Crash simulation
//!
//! Durability code paths report crash points to the fault injector
//! ([`CrashPoint`]); when the armed occurrence fires, the WAL truncates
//! its on-disk state to exactly the bytes a `kill -9` at that instant
//! would have left durable, marks itself dead, and every subsequent
//! operation fails with [`DbError::Io`]. Recovery then proceeds from the
//! files alone, exactly as it would after a real crash.
//!
//! # Recovery
//!
//! `recover_into` loads `snapshot.bin` (if present) into storage,
//! replays every WAL record with a commit timestamp greater than the
//! snapshot's, stops at the first torn or corrupt record (truncating the
//! file back to the last valid boundary), and advances the commit clock
//! to the highest replayed timestamp. A record is applied only if its
//! checksum verifies and its payload decodes completely, so a torn tail
//! can never surface partial effects.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use acidrain_obs::Obs;
use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::error::DbError;
use crate::fault::{CrashPoint, FaultHandle};
use crate::index::TableIndexes;
use crate::storage::{RowSlot, RowVersion, Storage};
use crate::txn::TxnId;
use crate::value::Value;

/// Magic bytes opening `wal.log`.
const WAL_MAGIC: &[u8; 8] = b"ARWAL001";
/// Magic bytes opening `snapshot.bin`.
const SNAP_MAGIC: &[u8; 8] = b"ARSNAP01";
/// Byte length of the WAL file header (just the magic).
pub const WAL_HEADER_LEN: u64 = 8;
/// Per-record frame header: u32 payload length + u64 FNV-1a checksum.
const REC_HEADER_LEN: usize = 12;

/// Durability configuration: where the log lives and how it flushes.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding `wal.log` and `snapshot.bin`.
    pub dir: PathBuf,
    /// Batch fsyncs across concurrently committing sessions (default) vs.
    /// one fsync per commit inside the commit critical section.
    pub group_commit: bool,
    /// Extra simulated device latency added to every fsync (spin-waited
    /// after the real `sync_data`), letting benchmarks model a disk with
    /// a meaningful flush cost.
    pub fsync_delay: Option<Duration>,
}

impl WalConfig {
    /// Group-commit configuration (the default) rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            group_commit: true,
            fsync_delay: None,
        }
    }

    /// Switch to one fsync per commit, inside the commit critical section.
    pub fn per_commit_fsync(mut self) -> Self {
        self.group_commit = false;
        self
    }

    /// Add a simulated per-fsync device latency.
    pub fn with_fsync_delay(mut self, delay: Duration) -> Self {
        self.fsync_delay = Some(delay);
        self
    }

    /// Path of the log file.
    pub fn log_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    /// Path of the installed (durable) snapshot.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }

    fn snapshot_tmp_path(&self) -> PathBuf {
        self.dir.join("snapshot.tmp")
    }
}

/// One logical redo operation within a commit record. Slot-addressed (not
/// version-index-addressed) so replay is insensitive to uncommitted
/// versions that existed when the record was written.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalOp {
    /// A new committed version of `slot` with the given values.
    Create {
        /// Table index.
        table: u32,
        /// Row-slot index.
        slot: u64,
        /// Column values of the new version.
        values: Vec<Value>,
    },
    /// The open version of `slot` was ended (delete, or the pre-image of
    /// an update; updates log `End` then `Create`).
    End {
        /// Table index.
        table: u32,
        /// Row-slot index.
        slot: u64,
    },
    /// The table's auto-increment counter as of this commit.
    AutoInc {
        /// Table index.
        table: u32,
        /// Counter value after the commit.
        value: i64,
    },
}

/// What recovery found and did; returned by [`crate::Database::recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Commit timestamp the installed snapshot covers (0 = no snapshot).
    pub snapshot_ts: u64,
    /// Commit records replayed from the log tail.
    pub commits_replayed: u64,
    /// Torn/corrupt trailing bytes discarded (and truncated off the file).
    pub torn_bytes_discarded: u64,
    /// Commit clock after recovery.
    pub commit_ts: u64,
}

/// Metadata of one valid record found by [`scan_wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecordInfo {
    /// Byte offset of the record's frame header in the file.
    pub offset: u64,
    /// Total framed length (header + payload).
    pub len: u64,
    /// Commit timestamp the record publishes.
    pub commit_ts: u64,
    /// Committing transaction id.
    pub txn: u64,
    /// Number of redo ops in the record.
    pub ops: u32,
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_i64(out, *i);
        }
        Value::Float(f) => {
            out.push(2);
            put_u64(out, f.to_bits());
        }
        Value::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(*b as u8);
        }
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "unexpected end of data at offset {} (wanted {n} bytes)",
                self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8 string: {e}"))
    }

    fn value(&mut self) -> Result<Value, String> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(f64::from_bits(self.u64()?)),
            3 => Value::Str(self.str()?),
            4 => Value::Bool(self.u8()? != 0),
            tag => return Err(format!("unknown value tag {tag}")),
        })
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Frame one commit record: `[u32 payload_len][u64 fnv1a][payload]` with
/// payload `[u64 commit_ts][u64 txn][u32 op_count][ops…]`.
fn encode_record(ts: u64, txn: TxnId, ops: &[WalOp]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32 + ops.len() * 16);
    put_u64(&mut payload, ts);
    put_u64(&mut payload, txn.0);
    put_u32(&mut payload, ops.len() as u32);
    for op in ops {
        match op {
            WalOp::Create {
                table,
                slot,
                values,
            } => {
                payload.push(0);
                put_u32(&mut payload, *table);
                put_u64(&mut payload, *slot);
                put_u32(&mut payload, values.len() as u32);
                for v in values {
                    put_value(&mut payload, v);
                }
            }
            WalOp::End { table, slot } => {
                payload.push(1);
                put_u32(&mut payload, *table);
                put_u64(&mut payload, *slot);
            }
            WalOp::AutoInc { table, value } => {
                payload.push(2);
                put_u32(&mut payload, *table);
                put_i64(&mut payload, *value);
            }
        }
    }
    let mut out = Vec::with_capacity(REC_HEADER_LEN + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u64(&mut out, fnv1a(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decode a record payload. Errors mean "treat as torn/corrupt".
fn decode_payload(payload: &[u8]) -> Result<(u64, u64, Vec<WalOp>), String> {
    let mut r = Reader::new(payload);
    let ts = r.u64()?;
    let txn = r.u64()?;
    let n = r.u32()? as usize;
    let mut ops = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        ops.push(match r.u8()? {
            0 => {
                let table = r.u32()?;
                let slot = r.u64()?;
                let ncols = r.u32()? as usize;
                let mut values = Vec::with_capacity(ncols.min(256));
                for _ in 0..ncols {
                    values.push(r.value()?);
                }
                WalOp::Create {
                    table,
                    slot,
                    values,
                }
            }
            1 => WalOp::End {
                table: r.u32()?,
                slot: r.u64()?,
            },
            2 => WalOp::AutoInc {
                table: r.u32()?,
                value: r.i64()?,
            },
            tag => return Err(format!("unknown op tag {tag}")),
        });
    }
    if !r.at_end() {
        return Err("trailing bytes in record payload".into());
    }
    Ok((ts, txn, ops))
}

/// Parse the record starting at `pos`. `None` means the tail from `pos`
/// on is torn or corrupt (short frame, bad checksum, undecodable payload).
fn parse_record_at(bytes: &[u8], pos: usize) -> Option<(WalRecordInfo, Vec<WalOp>)> {
    if bytes.len() - pos < REC_HEADER_LEN {
        return None;
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
    let start = pos + REC_HEADER_LEN;
    if bytes.len() - start < len {
        return None;
    }
    let payload = &bytes[start..start + len];
    if fnv1a(payload) != checksum {
        return None;
    }
    let (ts, txn, ops) = decode_payload(payload).ok()?;
    Some((
        WalRecordInfo {
            offset: pos as u64,
            len: (REC_HEADER_LEN + len) as u64,
            commit_ts: ts,
            txn,
            ops: ops.len() as u32,
        },
        ops,
    ))
}

/// Scan a WAL file: validate the header, walk the records, and return the
/// valid ones plus the byte length of the valid prefix. Bytes past the
/// returned length are a torn or corrupt tail.
pub fn scan_wal(path: &Path) -> Result<(Vec<WalRecordInfo>, u64), DbError> {
    let bytes = fs::read(path)?;
    scan_wal_bytes(&bytes)
}

fn scan_wal_bytes(bytes: &[u8]) -> Result<(Vec<WalRecordInfo>, u64), DbError> {
    if bytes.len() < WAL_MAGIC.len() {
        return Err(DbError::WalCorrupt(
            "log file shorter than its header".into(),
        ));
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(DbError::WalCorrupt("bad log magic".into()));
    }
    let mut infos = Vec::new();
    let mut pos = WAL_MAGIC.len();
    while let Some((info, _)) = parse_record_at(bytes, pos) {
        pos += info.len as usize;
        infos.push(info);
    }
    Ok((infos, pos as u64))
}

// ---------------------------------------------------------------------------
// The log itself
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct WalInner {
    /// Appended records not yet handed to a flush.
    buf: Vec<u8>,
    /// Commit records currently in `buf` (for the batch-size histogram).
    buf_commits: u64,
    /// Logical log position after the last `append` (monotonic; unlike
    /// the file length, it survives checkpoint truncation).
    appended_lsn: u64,
    /// Logical log position known durable (via fsync or snapshot).
    durable_lsn: u64,
    /// A flush leader is currently writing outside this lock.
    flushing: bool,
    /// Set once a simulated crash (or real I/O error) killed the log;
    /// every later operation fails with this message.
    dead: Option<String>,
}

#[derive(Debug)]
struct WalFile {
    file: File,
    /// Valid byte length of the file (the next flush's write position).
    end: u64,
}

/// A write-ahead log bound to one database. See the module docs for the
/// protocol; created via [`crate::Database::attach_wal`] or
/// [`crate::Database::recover`].
#[derive(Debug)]
pub struct Wal {
    config: WalConfig,
    obs: Obs,
    inner: Mutex<WalInner>,
    /// Signalled whenever `durable_lsn`, `flushing`, or `dead` changes.
    flushed: Condvar,
    io: Mutex<WalFile>,
}

impl Wal {
    /// Open (or create) the log under `config.dir`, repairing a torn tail
    /// left by a previous crash so appends start at a valid boundary.
    pub(crate) fn open(config: WalConfig, obs: Obs) -> Result<Self, DbError> {
        fs::create_dir_all(&config.dir)?;
        let path = config.log_path();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        let end = if len == 0 {
            file.write_all(WAL_MAGIC)?;
            file.sync_data()?;
            WAL_HEADER_LEN
        } else {
            let (_, valid) = scan_wal(&path)?;
            if valid < len {
                file.set_len(valid)?;
                file.sync_data()?;
            }
            valid
        };
        Ok(Wal {
            config,
            obs,
            inner: Mutex::new(WalInner {
                buf: Vec::new(),
                buf_commits: 0,
                appended_lsn: end,
                durable_lsn: end,
                flushing: false,
                dead: None,
            }),
            flushed: Condvar::new(),
            io: Mutex::new(WalFile { file, end }),
        })
    }

    /// The configuration this log was opened with.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// Whether a simulated crash (or real I/O failure) killed the log.
    pub fn is_dead(&self) -> bool {
        self.inner.lock().dead.is_some()
    }

    /// Bytes of record data currently in the log file (excluding the
    /// header). Drives log-size-triggered auto-checkpointing.
    pub(crate) fn log_bytes(&self) -> u64 {
        self.io.lock().end - WAL_HEADER_LEN
    }

    fn dead_err(msg: &str) -> DbError {
        DbError::Io(msg.to_string())
    }

    /// Append one commit record. Called inside the commit critical
    /// section, so append order is commit order. Returns the record's end
    /// LSN to pass to `Wal::sync_to`. In per-commit-fsync mode the
    /// flush happens here, still inside the critical section.
    pub(crate) fn append(
        &self,
        session: u64,
        ts: u64,
        txn: TxnId,
        ops: &[WalOp],
        faults: &FaultHandle,
    ) -> Result<u64, DbError> {
        let record = encode_record(ts, txn, ops);
        let mut g = self.inner.lock();
        if let Some(msg) = &g.dead {
            return Err(Self::dead_err(msg));
        }
        if faults.next_crash(CrashPoint::WalAppend) {
            // A kill mid-append leaves everything previously buffered plus
            // a torn prefix of this record on the device.
            loop {
                if let Some(msg) = &g.dead {
                    return Err(Self::dead_err(msg));
                }
                if !g.flushing {
                    break;
                }
                self.flushed.wait(&mut g);
            }
            let mut torn = std::mem::take(&mut g.buf);
            g.buf_commits = 0;
            torn.extend_from_slice(&record[..record.len() / 2]);
            let _ = self.write_raw(&torn);
            let msg = "simulated kill at wal-append (torn log tail)".to_string();
            g.dead = Some(msg.clone());
            self.flushed.notify_all();
            return Err(DbError::Io(msg));
        }
        self.obs.wal_append(session, record.len() as u64);
        g.buf.extend_from_slice(&record);
        g.buf_commits += 1;
        g.appended_lsn += record.len() as u64;
        let lsn = g.appended_lsn;
        if !self.config.group_commit {
            self.flush_inline(&mut g, session, faults)?;
        }
        Ok(lsn)
    }

    /// Wait until everything up to `lsn` is durable, becoming the group
    /// flush leader if no flush is in flight. Called *outside* the commit
    /// critical section, so sessions park here concurrently and one fsync
    /// covers the whole batch.
    pub(crate) fn sync_to(
        &self,
        lsn: u64,
        session: u64,
        faults: &FaultHandle,
    ) -> Result<(), DbError> {
        let mut g = self.inner.lock();
        loop {
            if let Some(msg) = &g.dead {
                return Err(Self::dead_err(msg));
            }
            if g.durable_lsn >= lsn {
                return Ok(());
            }
            if g.flushing {
                self.flushed.wait(&mut g);
                continue;
            }
            // Become the leader: take the batch, flush outside the lock.
            g.flushing = true;
            let bytes = std::mem::take(&mut g.buf);
            let commits = std::mem::replace(&mut g.buf_commits, 0);
            let target = g.appended_lsn;
            drop(g);
            let res = self.write_batch(&bytes, faults);
            g = self.inner.lock();
            g.flushing = false;
            match res {
                Ok(()) => {
                    g.durable_lsn = g.durable_lsn.max(target);
                    self.obs.wal_fsync(session, commits);
                }
                Err(e) => {
                    g.dead = Some(death_msg(&e));
                }
            }
            self.flushed.notify_all();
        }
    }

    /// Per-commit-fsync flush, holding the buffer lock throughout (the
    /// caller is inside the commit critical section anyway).
    fn flush_inline(
        &self,
        g: &mut MutexGuard<'_, WalInner>,
        session: u64,
        faults: &FaultHandle,
    ) -> Result<(), DbError> {
        loop {
            if let Some(msg) = &g.dead {
                return Err(Self::dead_err(msg));
            }
            if !g.flushing {
                break;
            }
            self.flushed.wait(g);
        }
        let bytes = std::mem::take(&mut g.buf);
        let commits = std::mem::replace(&mut g.buf_commits, 0);
        let target = g.appended_lsn;
        match self.write_batch(&bytes, faults) {
            Ok(()) => {
                g.durable_lsn = g.durable_lsn.max(target);
                self.obs.wal_fsync(session, commits);
                self.flushed.notify_all();
                Ok(())
            }
            Err(e) => {
                g.dead = Some(death_msg(&e));
                self.flushed.notify_all();
                Err(e)
            }
        }
    }

    /// Write + fsync a batch at the file's valid end, honouring the
    /// pre-fsync and post-fsync crash points.
    fn write_batch(&self, bytes: &[u8], faults: &FaultHandle) -> Result<(), DbError> {
        let mut f = self.io.lock();
        let base = f.end;
        f.file.seek(SeekFrom::Start(base))?;
        f.file.write_all(bytes)?;
        if faults.next_crash(CrashPoint::PreFsync) {
            // Killed before fsync: the written-but-unsynced batch never
            // survives. Model that by truncating it back off.
            f.file.set_len(base)?;
            f.file.sync_data()?;
            return Err(DbError::Io(
                "simulated kill at pre-fsync (batch lost)".into(),
            ));
        }
        f.file.sync_data()?;
        self.simulate_fsync_cost();
        f.end = base + bytes.len() as u64;
        if faults.next_crash(CrashPoint::PostFsync) {
            // Killed after fsync: the batch is durable but the committing
            // sessions never see the acknowledgement.
            return Err(DbError::Io(
                "simulated kill at post-fsync (batch durable, ack lost)".into(),
            ));
        }
        Ok(())
    }

    /// Raw write + fsync at the file end (torn-tail crash path; errors are
    /// ignored because the log is about to be declared dead anyway).
    fn write_raw(&self, bytes: &[u8]) -> std::io::Result<()> {
        let mut f = self.io.lock();
        let base = f.end;
        f.file.seek(SeekFrom::Start(base))?;
        f.file.write_all(bytes)?;
        f.file.sync_data()?;
        f.end = base + bytes.len() as u64;
        Ok(())
    }

    fn simulate_fsync_cost(&self) {
        if let Some(delay) = self.config.fsync_delay {
            let start = Instant::now();
            while start.elapsed() < delay {
                std::hint::spin_loop();
            }
        }
    }

    /// Install a snapshot and truncate the log. The caller holds the
    /// commit critical section, so no appends race; any in-flight flush
    /// is waited out first. Buffered-but-unflushed commits are covered by
    /// the snapshot (their effects are in storage), so their `sync_to`
    /// waiters complete via the advanced `durable_lsn`.
    pub(crate) fn checkpoint(&self, snapshot: &[u8], faults: &FaultHandle) -> Result<(), DbError> {
        let mut g = self.inner.lock();
        loop {
            if let Some(msg) = &g.dead {
                return Err(Self::dead_err(msg));
            }
            if !g.flushing {
                break;
            }
            self.flushed.wait(&mut g);
        }
        let tmp = self.config.snapshot_tmp_path();
        if faults.next_crash(CrashPoint::MidCheckpoint) {
            // Killed mid-write: a partial temp file is left behind; the
            // previous snapshot and the full log stay intact, so recovery
            // ignores the debris.
            let _ = fs::write(&tmp, &snapshot[..snapshot.len() / 2]);
            let msg = "simulated kill at mid-checkpoint (partial snapshot temp file)".to_string();
            g.dead = Some(msg.clone());
            self.flushed.notify_all();
            return Err(DbError::Io(msg));
        }
        let mut f = File::create(&tmp)?;
        f.write_all(snapshot)?;
        f.sync_data()?;
        drop(f);
        fs::rename(&tmp, self.config.snapshot_path())?;
        {
            let mut io = self.io.lock();
            io.file.set_len(WAL_HEADER_LEN)?;
            io.file.sync_data()?;
            io.end = WAL_HEADER_LEN;
        }
        g.buf.clear();
        g.buf_commits = 0;
        g.durable_lsn = g.appended_lsn;
        self.flushed.notify_all();
        Ok(())
    }
}

fn death_msg(e: &DbError) -> String {
    match e {
        DbError::Io(m) => m.clone(),
        other => other.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Snapshot + recovery
// ---------------------------------------------------------------------------

/// Serialize the committed state of every table. Called with the commit
/// critical section held, so the committed state is a consistent cut at
/// `ts`; uncommitted versions (and uncommitted enders) are skipped — if
/// their transactions later commit, their redo records land in the WAL
/// after the snapshot and replay on top of it.
pub(crate) fn encode_snapshot(storage: &Storage, ts: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAP_MAGIC);
    put_u64(&mut out, ts);
    put_u32(&mut out, storage.table_count() as u32);
    for idx in 0..storage.table_count() {
        let t = storage.read(idx);
        put_str(&mut out, &t.name);
        put_i64(&mut out, t.auto_counter);
        put_u64(&mut out, t.rows.len() as u64);
        for slot in &t.rows {
            let committed: Vec<&RowVersion> = slot
                .versions
                .iter()
                .filter(|v| v.begin_ts().is_some())
                .collect();
            put_u32(&mut out, committed.len() as u32);
            for v in committed {
                put_u64(&mut out, v.begin_ts().expect("filtered on begin_ts"));
                match v.end_ts() {
                    Some(e) => {
                        out.push(1);
                        put_u64(&mut out, e);
                    }
                    None => out.push(0),
                }
                put_u32(&mut out, v.values.len() as u32);
                for val in &v.values {
                    put_value(&mut out, val);
                }
            }
        }
    }
    out
}

fn snap_err(msg: impl std::fmt::Display) -> DbError {
    DbError::WalCorrupt(format!("snapshot: {msg}"))
}

/// Replace storage contents with the snapshot's. Returns the snapshot's
/// commit timestamp.
fn install_snapshot_into(storage: &Storage, bytes: &[u8]) -> Result<u64, DbError> {
    let mut r = Reader::new(bytes);
    if r.take(SNAP_MAGIC.len()).map_err(snap_err)? != SNAP_MAGIC {
        return Err(snap_err("bad magic"));
    }
    let ts = r.u64().map_err(snap_err)?;
    let n = r.u32().map_err(snap_err)? as usize;
    if n != storage.table_count() {
        return Err(snap_err(format!(
            "table count {n} does not match schema ({})",
            storage.table_count()
        )));
    }
    for _ in 0..n {
        let name = r.str().map_err(snap_err)?;
        let idx = storage
            .table_index(&name)
            .ok_or_else(|| snap_err(format!("unknown table {name:?}")))?;
        let auto = r.i64().map_err(snap_err)?;
        let nslots = r.u64().map_err(snap_err)? as usize;
        let mut guard = storage.write(idx);
        let mut indexes = TableIndexes::new(guard.indexes.indexed_columns().to_vec());
        let mut rows = Vec::with_capacity(nslots.min(1 << 20));
        for slot_idx in 0..nslots {
            let nversions = r.u32().map_err(snap_err)? as usize;
            let mut slot = RowSlot::default();
            for _ in 0..nversions {
                let begin = r.u64().map_err(snap_err)?;
                let end = match r.u8().map_err(snap_err)? {
                    0 => None,
                    _ => Some(r.u64().map_err(snap_err)?),
                };
                let ncols = r.u32().map_err(snap_err)? as usize;
                let mut values = Vec::with_capacity(ncols.min(256));
                for _ in 0..ncols {
                    values.push(r.value().map_err(snap_err)?);
                }
                indexes.add(slot_idx, &values);
                let version = RowVersion::committed(values, begin);
                if let Some(e) = end {
                    version.stamp_end(e);
                }
                slot.versions.push(version);
            }
            rows.push(slot);
        }
        guard.rows = rows;
        guard.indexes = indexes;
        guard.auto_counter = auto;
    }
    if !r.at_end() {
        return Err(snap_err("trailing bytes"));
    }
    Ok(ts)
}

/// Apply one commit record's redo ops. Within a record, ops appear in
/// execution order (updates log `End` before `Create`), so "the newest
/// open version" is always the right `End` target.
fn replay_record(storage: &Storage, ts: u64, ops: &[WalOp]) -> Result<(), DbError> {
    for op in ops {
        match op {
            WalOp::Create {
                table,
                slot,
                values,
            } => {
                let idx = *table as usize;
                if idx >= storage.table_count() {
                    return Err(DbError::WalCorrupt(format!("CREATE names table {idx}")));
                }
                let mut guard = storage.write(idx);
                let slot = *slot as usize;
                // Gap slots are inserts that rolled back before this
                // commit: materialize them empty so slot indices line up.
                while guard.rows.len() <= slot {
                    guard.rows.push(RowSlot::default());
                }
                let data = &mut *guard;
                data.indexes.add(slot, values);
                data.rows[slot]
                    .versions
                    .push(RowVersion::committed(values.clone(), ts));
            }
            WalOp::End { table, slot } => {
                let idx = *table as usize;
                if idx >= storage.table_count() {
                    return Err(DbError::WalCorrupt(format!("END names table {idx}")));
                }
                let mut guard = storage.write(idx);
                let slot = *slot as usize;
                let open = guard
                    .rows
                    .get_mut(slot)
                    .and_then(|s| s.versions.iter_mut().rev().find(|v| v.is_open()))
                    .ok_or_else(|| {
                        DbError::WalCorrupt(format!("END op found no open version in slot {slot}"))
                    })?;
                open.stamp_end(ts);
            }
            WalOp::AutoInc { table, value } => {
                let idx = *table as usize;
                if idx >= storage.table_count() {
                    return Err(DbError::WalCorrupt(format!("AUTOINC names table {idx}")));
                }
                storage.write(idx).auto_counter = *value;
            }
        }
    }
    Ok(())
}

/// ARIES-lite restart: install the snapshot (if any), replay the log tail,
/// repair a torn tail, and advance the commit clock. The storage must be
/// in the same state the crashed engine started from (same schema, same
/// seeded fixtures) — the snapshot replaces table contents wholesale, but
/// without one the log replays on top of the seeded state.
pub(crate) fn recover_into(storage: &Storage, config: &WalConfig) -> Result<RecoveryInfo, DbError> {
    let mut snapshot_ts = 0;
    let snap_path = config.snapshot_path();
    if snap_path.exists() {
        let bytes = fs::read(&snap_path)?;
        snapshot_ts = install_snapshot_into(storage, &bytes)?;
    }
    let mut info = RecoveryInfo {
        snapshot_ts,
        commits_replayed: 0,
        torn_bytes_discarded: 0,
        commit_ts: snapshot_ts,
    };
    let log_path = config.log_path();
    if log_path.exists() {
        let bytes = fs::read(&log_path)?;
        if !bytes.is_empty() {
            if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
                return Err(DbError::WalCorrupt("bad log magic".into()));
            }
            let mut pos = WAL_MAGIC.len();
            let mut prev_ts = 0;
            while let Some((rec, ops)) = parse_record_at(&bytes, pos) {
                pos += rec.len as usize;
                if rec.commit_ts <= prev_ts {
                    return Err(DbError::WalCorrupt(format!(
                        "non-monotonic commit timestamp {} after {prev_ts}",
                        rec.commit_ts
                    )));
                }
                prev_ts = rec.commit_ts;
                // Records at or below the snapshot bound are pre-checkpoint
                // leftovers (a crash can land between the snapshot rename
                // and the log truncation); their effects are already in
                // the snapshot.
                if rec.commit_ts > snapshot_ts {
                    replay_record(storage, rec.commit_ts, &ops)?;
                    info.commits_replayed += 1;
                    info.commit_ts = rec.commit_ts;
                }
            }
            if (pos as u64) < bytes.len() as u64 {
                info.torn_bytes_discarded = bytes.len() as u64 - pos as u64;
                let f = OpenOptions::new().write(true).open(&log_path)?;
                f.set_len(pos as u64)?;
                f.sync_data()?;
            }
        }
    }
    storage.set_commit_ts(info.commit_ts);
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops_sample() -> Vec<WalOp> {
        vec![
            WalOp::End { table: 1, slot: 4 },
            WalOp::Create {
                table: 1,
                slot: 4,
                values: vec![
                    Value::Int(-7),
                    Value::Str("John's".into()),
                    Value::Float(2.5),
                    Value::Bool(true),
                    Value::Null,
                ],
            },
            WalOp::AutoInc { table: 1, value: 9 },
        ]
    }

    #[test]
    fn record_roundtrips_through_codec() {
        let ops = ops_sample();
        let rec = encode_record(42, TxnId(7), &ops);
        let (info, decoded) = parse_record_at(&rec, 0).expect("valid record");
        assert_eq!(info.commit_ts, 42);
        assert_eq!(info.txn, 7);
        assert_eq!(info.len, rec.len() as u64);
        assert_eq!(decoded, ops);
    }

    #[test]
    fn torn_and_corrupt_tails_are_rejected() {
        let rec = encode_record(1, TxnId(1), &ops_sample());
        // Truncation at every byte boundary short of the full record.
        for cut in 0..rec.len() {
            assert!(
                parse_record_at(&rec[..cut], 0).is_none(),
                "cut at {cut} parsed"
            );
        }
        // A flipped payload byte fails the checksum.
        let mut bad = rec.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(parse_record_at(&bad, 0).is_none());
    }

    #[test]
    fn scan_stops_at_first_invalid_record() {
        let mut bytes = WAL_MAGIC.to_vec();
        let r1 = encode_record(1, TxnId(1), &ops_sample());
        let r2 = encode_record(2, TxnId(2), &ops_sample());
        bytes.extend_from_slice(&r1);
        bytes.extend_from_slice(&r2);
        bytes.extend_from_slice(&r2[..r2.len() / 2]); // torn third record
        let (infos, valid) = scan_wal_bytes(&bytes).unwrap();
        assert_eq!(infos.len(), 2);
        assert_eq!(valid, (WAL_MAGIC.len() + r1.len() + r2.len()) as u64);
        assert_eq!(infos[1].offset, (WAL_MAGIC.len() + r1.len()) as u64);
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pinned so the on-disk format cannot silently change.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
