//! Predicate analysis for the index read paths.
//!
//! The executor asks two narrow questions before scanning a table: *does
//! the statement's WHERE/ON tree prove `col = literal`* — served by an
//! equality (hash) probe — *or, failing that, a one-column range like
//! `col < literal`* — served by an ordered-index range probe — *for some
//! index-backed column of this table?* If so, the table's candidate rows
//! come from an index probe instead of a full slot walk. The analysis is
//! purely sufficient, never necessary: a conjunct it cannot extract just
//! means a full scan, and every candidate an index supplies is still run
//! through the ordinary predicate evaluation — so a false negative costs
//! time, never correctness.
//!
//! Extraction rules:
//!
//! * only **top-level AND conjuncts** are inspected (`a = 1 AND rest`);
//!   anything under `OR`, `NOT`, arithmetic, `IN`, or `CASE` is opaque;
//! * a conjunct must be `column = literal` or `literal = column` with a
//!   bare column reference and a bare literal — computed values fall back;
//! * column references resolve exactly as [`crate::expr::EvalScope`]
//!   resolves them (qualifier → effective table name; unqualified → first
//!   table in scope order carrying the name);
//! * if *any* column reference in the analyzed clause fails to resolve,
//!   the whole statement falls back to the full scan, so evaluation
//!   surfaces the same [`crate::error::DbError::UnknownColumn`] the
//!   pre-index engine raised.

use acidrain_sql::ast::{BinOp, ColumnRef, Expr};

use crate::value::Value;

/// A `col = literal` equality that holds for every row combination the
/// analyzed clauses accept.
#[derive(Debug, Clone, PartialEq)]
pub struct EqConstraint {
    /// Position of the owning table in the statement's scope (join order).
    pub table: usize,
    /// Storage position of the column within that table.
    pub column: usize,
    /// The literal the column must equal.
    pub value: Value,
}

/// A one-column range that holds for every row combination the analyzed
/// clauses accept: `lower <= col <= upper` with either side optional.
/// Bounds are **widened to inclusive** (`col < 10` contributes upper
/// `10`) — the candidate set is a superset and the exact predicate
/// re-verifies every candidate, same as the equality path.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeConstraint {
    /// Position of the owning table in the statement's scope (join order).
    pub table: usize,
    /// Storage position of the column within that table.
    pub column: usize,
    /// Inclusive lower bound, if any conjunct proved one.
    pub lower: Option<Value>,
    /// Inclusive upper bound, if any conjunct proved one.
    pub upper: Option<Value>,
}

/// One table's name bindings during analysis, mirroring
/// [`crate::expr::EvalTable`] without row values.
#[derive(Debug, Clone, Copy)]
pub struct PlanTable<'a> {
    /// The name expressions refer to the table by (alias or real name).
    pub effective_name: &'a str,
    /// Column names in storage order.
    pub columns: &'a [String],
}

/// Resolve a column reference against the scope, mirroring
/// `EvalScope::lookup`: `Some((table position, column position))` or
/// `None` when evaluation would raise `UnknownColumn`.
fn resolve(tables: &[PlanTable<'_>], col: &ColumnRef) -> Option<(usize, usize)> {
    if let Some(qualifier) = &col.table {
        let ti = tables.iter().position(|t| t.effective_name == qualifier)?;
        let ci = tables[ti].columns.iter().position(|c| c == &col.column)?;
        return Some((ti, ci));
    }
    for (ti, t) in tables.iter().enumerate() {
        if let Some(ci) = t.columns.iter().position(|c| c == &col.column) {
            return Some((ti, ci));
        }
    }
    None
}

/// Collect the `col = literal` constraints proven by the top-level AND
/// conjuncts of every clause in `clauses`. Returns `None` — demanding a
/// full-scan fallback — when any column reference in any clause fails to
/// resolve, so the scan raises the same `UnknownColumn` error the
/// index-free engine did.
pub fn equality_constraints(
    clauses: &[&Expr],
    tables: &[PlanTable<'_>],
) -> Option<Vec<EqConstraint>> {
    // Fallback on unresolvable columns anywhere in the clauses.
    for clause in clauses {
        let mut all_resolve = true;
        clause.visit_columns(&mut |c| {
            if resolve(tables, c).is_none() {
                all_resolve = false;
            }
        });
        if !all_resolve {
            return None;
        }
    }
    let mut out = Vec::new();
    for clause in clauses {
        collect_conjuncts(clause, tables, &mut out);
    }
    Some(out)
}

/// Collect the one-column range constraints proven by the top-level AND
/// conjuncts of every clause in `clauses` — `col < lit`, `lit <= col`,
/// and friends (`BETWEEN` desugars to such conjuncts in the parser).
/// Bounds merge per column: the first lower and first upper seen win
/// (later, possibly tighter bounds only shrink a set the predicate
/// re-verifies anyway). Returns `None` under exactly the same
/// unresolvable-column rule as [`equality_constraints`].
pub fn range_constraints(
    clauses: &[&Expr],
    tables: &[PlanTable<'_>],
) -> Option<Vec<RangeConstraint>> {
    for clause in clauses {
        let mut all_resolve = true;
        clause.visit_columns(&mut |c| {
            if resolve(tables, c).is_none() {
                all_resolve = false;
            }
        });
        if !all_resolve {
            return None;
        }
    }
    let mut out: Vec<RangeConstraint> = Vec::new();
    for clause in clauses {
        collect_range_conjuncts(clause, tables, &mut out);
    }
    Some(out)
}

fn collect_range_conjuncts(expr: &Expr, tables: &[PlanTable<'_>], out: &mut Vec<RangeConstraint>) {
    let Expr::Binary { left, op, right } = expr else {
        return;
    };
    if *op == BinOp::And {
        collect_range_conjuncts(left, tables, out);
        collect_range_conjuncts(right, tables, out);
        return;
    }
    // Orient each comparison as `col OP lit`: `lit < col` is `col > lit`.
    let (c, lit, op) = match (&**left, &**right, *op) {
        (Expr::Column(c), Expr::Literal(l), op) => (c, l, op),
        (Expr::Literal(l), Expr::Column(c), BinOp::Lt) => (c, l, BinOp::Gt),
        (Expr::Literal(l), Expr::Column(c), BinOp::LtEq) => (c, l, BinOp::GtEq),
        (Expr::Literal(l), Expr::Column(c), BinOp::Gt) => (c, l, BinOp::Lt),
        (Expr::Literal(l), Expr::Column(c), BinOp::GtEq) => (c, l, BinOp::LtEq),
        _ => return,
    };
    let Some((table, column)) = resolve(tables, c) else {
        return;
    };
    let value = Value::from_literal(lit);
    let (lower, upper) = match op {
        BinOp::Lt | BinOp::LtEq => (None, Some(value)),
        BinOp::Gt | BinOp::GtEq => (Some(value), None),
        _ => return,
    };
    if let Some(existing) = out
        .iter_mut()
        .find(|r| r.table == table && r.column == column)
    {
        if existing.lower.is_none() {
            existing.lower = lower.clone();
        }
        if existing.upper.is_none() {
            existing.upper = upper.clone();
        }
        return;
    }
    out.push(RangeConstraint {
        table,
        column,
        lower,
        upper,
    });
}

fn collect_conjuncts(expr: &Expr, tables: &[PlanTable<'_>], out: &mut Vec<EqConstraint>) {
    match expr {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            collect_conjuncts(left, tables, out);
            collect_conjuncts(right, tables, out);
        }
        Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } => {
            let col_lit = match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(l)) | (Expr::Literal(l), Expr::Column(c)) => {
                    Some((c, l))
                }
                _ => None,
            };
            if let Some((c, lit)) = col_lit {
                if let Some((table, column)) = resolve(tables, c) {
                    out.push(EqConstraint {
                        table,
                        column,
                        value: Value::from_literal(lit),
                    });
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acidrain_sql::{parse_statement, Statement};

    fn where_expr(sql: &str) -> Expr {
        match parse_statement(&format!("SELECT * FROM t WHERE {sql}")).unwrap() {
            Statement::Select(s) => s.selection.unwrap(),
            _ => unreachable!(),
        }
    }

    fn single_scope(cols: &[&str]) -> Vec<String> {
        cols.iter().map(|s| s.to_string()).collect()
    }

    fn analyze(sql: &str, cols: &[&str]) -> Option<Vec<EqConstraint>> {
        let columns = single_scope(cols);
        let tables = [PlanTable {
            effective_name: "t",
            columns: &columns,
        }];
        equality_constraints(&[&where_expr(sql)], &tables)
    }

    #[test]
    fn extracts_top_level_equality_conjuncts() {
        let cs = analyze("id = 5", &["id", "v"]).unwrap();
        assert_eq!(
            cs,
            vec![EqConstraint {
                table: 0,
                column: 0,
                value: Value::Int(5)
            }]
        );
        // Reversed operands and AND chains both extract.
        let cs = analyze("7 = v AND id = 1 AND v > 0", &["id", "v"]).unwrap();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].column, 1);
        assert_eq!(cs[1].column, 0);
    }

    #[test]
    fn opaque_shapes_extract_nothing_but_do_not_fallback() {
        assert_eq!(analyze("id = 1 OR v = 2", &["id", "v"]).unwrap(), vec![]);
        assert_eq!(analyze("id + 1 = 2", &["id", "v"]).unwrap(), vec![]);
        assert_eq!(analyze("id IN (1, 2)", &["id", "v"]).unwrap(), vec![]);
        // NOT over an equality is opaque.
        assert_eq!(analyze("NOT id = 1", &["id", "v"]).unwrap(), vec![]);
    }

    #[test]
    fn unresolvable_column_forces_fallback() {
        assert_eq!(analyze("nope = 1", &["id", "v"]), None);
        // ... even when buried in a non-conjunct position.
        assert_eq!(
            analyze("id = 1 AND (nope > 2 OR v = 3)", &["id", "v"]),
            None
        );
    }

    fn analyze_range(sql: &str, cols: &[&str]) -> Option<Vec<RangeConstraint>> {
        let columns = single_scope(cols);
        let tables = [PlanTable {
            effective_name: "t",
            columns: &columns,
        }];
        range_constraints(&[&where_expr(sql)], &tables)
    }

    #[test]
    fn extracts_and_merges_range_conjuncts() {
        let rs = analyze_range("qty < 10", &["id", "qty"]).unwrap();
        assert_eq!(
            rs,
            vec![RangeConstraint {
                table: 0,
                column: 1,
                lower: None,
                upper: Some(Value::Int(10)),
            }]
        );
        // Both sides merge onto one constraint; reversed operands orient.
        let rs = analyze_range("qty >= 2 AND 10 > qty", &["id", "qty"]).unwrap();
        assert_eq!(
            rs,
            vec![RangeConstraint {
                table: 0,
                column: 1,
                lower: Some(Value::Int(2)),
                upper: Some(Value::Int(10)),
            }]
        );
        // BETWEEN desugars in the parser to the same conjunct shape.
        let rs = analyze_range("qty BETWEEN 3 AND 7", &["id", "qty"]).unwrap();
        assert_eq!(rs[0].lower, Some(Value::Int(3)));
        assert_eq!(rs[0].upper, Some(Value::Int(7)));
        // First bound per side wins; extra bounds only widen the superset.
        let rs = analyze_range("qty > 5 AND qty > 8", &["id", "qty"]).unwrap();
        assert_eq!(rs[0].lower, Some(Value::Int(5)));
        assert_eq!(rs[0].upper, None);
    }

    #[test]
    fn range_opaque_shapes_and_fallback() {
        assert_eq!(
            analyze_range("qty < 1 OR qty > 5", &["id", "qty"]).unwrap(),
            vec![]
        );
        assert_eq!(
            analyze_range("qty + 1 < 10", &["id", "qty"]).unwrap(),
            vec![]
        );
        assert_eq!(analyze_range("nope < 1", &["id", "qty"]), None);
    }

    #[test]
    fn qualified_and_join_scope_resolution() {
        let a = single_scope(&["x", "shared"]);
        let b = single_scope(&["y", "shared"]);
        let tables = [
            PlanTable {
                effective_name: "a",
                columns: &a,
            },
            PlanTable {
                effective_name: "b",
                columns: &b,
            },
        ];
        let e = where_expr("b.y = 3 AND shared = 1");
        let cs = equality_constraints(&[&e], &tables).unwrap();
        assert_eq!(
            cs[0],
            EqConstraint {
                table: 1,
                column: 0,
                value: Value::Int(3)
            }
        );
        // Unqualified `shared` resolves to the FIRST scope table, exactly
        // as EvalScope::lookup does.
        assert_eq!(
            cs[1],
            EqConstraint {
                table: 0,
                column: 1,
                value: Value::Int(1)
            }
        );
    }
}
