//! Statement execution against the multi-version storage.
//!
//! Execution is two-phase: identify target rows and acquire every needed
//! lock first (retryable — a lock conflict returns
//! [`DbError::WouldBlock`] with no data effects), then apply mutations
//! atomically. Lock plans depend on the transaction's isolation level; see
//! [`crate::isolation::IsolationLevel`].
//!
//! Statement atomicity under the decomposed engine: each statement pins
//! (read- or write-latches) the tables it touches for its whole duration,
//! acquiring multiple latches in ascending table-index order. All
//! `WouldBlock` exits happen before any mutation, and latch guards drop on
//! every return path — a statement never parks on the lock table while
//! holding a latch.

use acidrain_sql::ast::{Delete, Expr, Insert, Select, SelectItem, Statement, Update};
use acidrain_sql::rwset::{statement_accesses, AccessKind};

use crate::db::Database;
use crate::error::DbError;
use crate::expr::{eval, EvalScope, EvalTable};
use crate::fault::InjectedFault;
use crate::lock::{LockMode, LockOutcome, ResourceId};
use crate::plan::{equality_constraints, range_constraints, PlanTable};
use crate::result::ResultSet;
use crate::storage::{ReadView, RowVersion, TableData};
use crate::txn::{TxnId, TxnState, UndoRecord};
use crate::value::Value;

/// Execute a data statement within `txn`. Transaction-control statements
/// are handled by [`crate::Connection`], not here — as is the rollback of
/// the transaction when the returned error aborts it (the rollback must
/// run after this statement's latch guards have dropped).
///
/// A predetermined `injected` fault (from the database's
/// [`crate::fault::FaultInjector`]) preempts real execution and takes the
/// same abort path an organic failure would, so injected deadlocks and
/// conflicts roll back — and release locks — exactly like real ones.
pub(crate) fn execute(
    db: &Database,
    txn: &mut TxnState,
    stmt: &Statement,
    injected: Option<InjectedFault>,
) -> Result<ResultSet, DbError> {
    match injected {
        Some(InjectedFault::Deadlock) => Err(DbError::Deadlock),
        Some(InjectedFault::WriteConflict) => {
            Err(DbError::WriteConflict("injected concurrent update".into()))
        }
        Some(InjectedFault::LockTimeout) => Err(DbError::LockTimeout),
        // Connection drops are a session-layer fault; the connection
        // handles them before reaching the executor.
        Some(InjectedFault::ConnectionDrop) => {
            Err(DbError::Internal("connection drop reached executor".into()))
        }
        None => match stmt {
            Statement::Select(s) => exec_select(db, txn, s),
            Statement::Insert(i) => exec_insert(db, txn, i),
            Statement::Update(u) => exec_update(db, txn, u),
            Statement::Delete(d) => exec_delete(db, txn, d),
            _ => Err(DbError::Internal(
                "control statement reached executor".into(),
            )),
        },
    }
}

fn acquire(
    db: &Database,
    txn: &TxnState,
    resource: ResourceId,
    mode: LockMode,
) -> Result<(), DbError> {
    // Flagged before the attempt: even a blocked or deadlocked request may
    // have registered this transaction with the lock manager, so commit and
    // rollback must still run `release_all`. Transactions that never reach
    // this function skip the lock manager's global mutex entirely.
    txn.locks_taken.set(true);
    match db.locks.acquire(txn.id, resource, mode) {
        LockOutcome::Granted => Ok(()),
        LockOutcome::Blocked(holders) => Err(DbError::WouldBlock { holders }),
        LockOutcome::Deadlock => Err(DbError::Deadlock),
    }
}

fn table_index(db: &Database, name: &str) -> Result<usize, DbError> {
    db.storage
        .table_index(name)
        .ok_or_else(|| DbError::UnknownTable(name.to_string()))
}

// ---------------------------------------------------------------------------
// SELECT

/// Per-table metadata resolved for a SELECT.
struct ScopeTable {
    effective: String,
    table_idx: usize,
    columns: Vec<String>,
    access: AccessKind,
}

/// One joined match: per-table row slot indices and cloned values.
struct Matched {
    slots: Vec<usize>,
    values: Vec<Vec<Value>>,
}

fn exec_select(db: &Database, txn: &mut TxnState, s: &Select) -> Result<ResultSet, DbError> {
    // Table-less SELECT: evaluate the projection over an empty scope.
    let Some(from) = &s.from else {
        let scope = EvalScope::default();
        let mut columns = Vec::new();
        let mut row = Vec::new();
        for item in &s.projection {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(DbError::Unsupported("wildcard without FROM".into()));
            };
            columns.push(projection_name(expr, alias));
            row.push(eval(expr, &scope)?);
        }
        return Ok(ResultSet {
            columns,
            rows: vec![row],
        });
    };

    // Resolve tables and their access kinds.
    let accesses = statement_accesses(&Statement::Select(s.clone()), &db.schema);
    let mut tables = Vec::new();
    let mut refs = vec![(from.effective_name().to_string(), from.name.clone())];
    for j in &s.joins {
        refs.push((j.table.effective_name().to_string(), j.table.name.clone()));
    }
    for (effective, real) in &refs {
        let table_idx = table_index(db, real)?;
        let columns: Vec<String> = db
            .schema
            .table(real)
            .map(|t| t.column_names().map(str::to_string).collect())
            .unwrap_or_default();
        let access = accesses
            .iter()
            .find(|a| &a.table == real)
            .map(|a| a.access)
            .unwrap_or(AccessKind::Predicate);
        tables.push(ScopeTable {
            effective: effective.clone(),
            table_idx,
            columns,
            access,
        });
    }

    let isolation = txn.isolation;

    // Table-level locks.
    for t in &tables {
        if s.for_update {
            acquire(
                db,
                txn,
                ResourceId::Table(t.table_idx),
                LockMode::IntentionExclusive,
            )?;
        } else if isolation.read_locks_predicates() && t.access == AccessKind::Predicate {
            acquire(db, txn, ResourceId::Table(t.table_idx), LockMode::Shared)?;
        } else if isolation.read_locks_items() {
            acquire(
                db,
                txn,
                ResourceId::Table(t.table_idx),
                LockMode::IntentionShared,
            )?;
        }
    }

    // Pin the statement's read latches: distinct tables only (a self-join
    // needs one latch), in ascending index order (latch hierarchy).
    let mut latch_order: Vec<usize> = tables.iter().map(|t| t.table_idx).collect();
    latch_order.sort_unstable();
    latch_order.dedup();
    let token = db.obs.latch_wait_start();
    let guards: Vec<_> = latch_order
        .iter()
        .map(|&idx| db.storage.read(idx))
        .collect();
    db.obs.latch_acquired(token, txn.id.0);
    let data: Vec<&TableData> = tables
        .iter()
        .map(|t| {
            let pos = latch_order
                .binary_search(&t.table_idx)
                .expect("latched table");
            &*guards[pos]
        })
        .collect();

    // Read view: locking reads and lock-based levels use a current read;
    // MVCC levels use their snapshot. Computed once per statement, after
    // the latches are pinned.
    let view = if s.for_update || isolation.read_locks_items() {
        db.current_read(txn.id)
    } else if isolation.reads_uncommitted() {
        ReadView::Latest { txn: txn.id }
    } else {
        let as_of = db.read_snapshot_ts(txn);
        ReadView::Snapshot { as_of, txn: txn.id }
    };

    // Candidate slot lists, per scan depth: index-supplied where a WHERE/ON
    // conjunct proves `col = literal` on an index-backed column, full walk
    // otherwise. Decided after the latches are pinned (the probe must see
    // the same frozen index state the scan will).
    let candidates = scan_candidates(db, txn, &data, &tables, s);

    let matches = scan(&data, &tables, s, view, &candidates)?;

    // Row-level locks on everything read.
    for m in &matches {
        for (ti, slot) in m.slots.iter().enumerate() {
            let row = ResourceId::Row(tables[ti].table_idx, *slot);
            if s.for_update {
                acquire(db, txn, row, LockMode::Exclusive)?;
            } else if isolation.read_locks_items()
                && !(isolation.read_locks_predicates()
                    && tables[ti].access == AccessKind::Predicate)
            {
                acquire(db, txn, row, LockMode::Shared)?;
            }
        }
    }

    project(&tables, s, matches)
}

/// Per-depth candidate slot lists for a (joined) SELECT scan: `Some` holds
/// ascending index-supplied candidates, `None` demands a full slot walk.
///
/// Because index buckets are visibility-agnostic supersets and probe
/// results come back sorted in slot order, routing through the index never
/// changes which rows the scan yields or the order it yields them in —
/// only how many slots it inspects. The hit/fallback counters fire here,
/// after the route is fixed, so observability never perturbs the decision.
fn scan_candidates(
    db: &Database,
    txn: &TxnState,
    data: &[&TableData],
    tables: &[ScopeTable],
    s: &Select,
) -> Vec<Option<Vec<usize>>> {
    let mut out: Vec<Option<Vec<usize>>> = vec![None; tables.len()];
    // Unpredicated scans are honest full walks, not index fallbacks.
    if s.selection.is_none() && s.joins.is_empty() {
        return out;
    }
    if db.use_indexes() {
        let plan_tables: Vec<PlanTable<'_>> = tables
            .iter()
            .map(|t| PlanTable {
                effective_name: &t.effective,
                columns: &t.columns,
            })
            .collect();
        let mut clauses: Vec<&Expr> = Vec::new();
        if let Some(sel) = &s.selection {
            clauses.push(sel);
        }
        for j in &s.joins {
            clauses.push(&j.on);
        }
        if let Some(constraints) = equality_constraints(&clauses, &plan_tables) {
            for c in &constraints {
                if out[c.table].is_some() {
                    continue;
                }
                out[c.table] = data[c.table].indexes.probe(c.column, &c.value);
            }
            // Depths an equality couldn't serve fall through to ordered
            // range probes (`qty < k`, `BETWEEN`) when those are enabled.
            if db.use_range_indexes() {
                if let Some(ranges) = range_constraints(&clauses, &plan_tables) {
                    for r in &ranges {
                        if out[r.table].is_some() {
                            continue;
                        }
                        out[r.table] = data[r.table].indexes.probe_range(
                            r.column,
                            r.lower.as_ref(),
                            r.upper.as_ref(),
                        );
                    }
                }
            }
        }
    }
    for cand in &out {
        db.obs.index_probe(txn.id.0, cand.is_some());
    }
    out
}

/// Scan the (joined) tables, returning rows matching the ON and WHERE
/// clauses under `view`. `data` is aligned with `tables` (self-joins alias
/// the same latched table); `candidates` is aligned with both.
fn scan(
    data: &[&TableData],
    tables: &[ScopeTable],
    s: &Select,
    view: ReadView,
    candidates: &[Option<Vec<usize>>],
) -> Result<Vec<Matched>, DbError> {
    let mut matches = Vec::new();
    let mut current: Vec<(usize, &[Value])> = Vec::new();
    scan_rec(
        data,
        tables,
        s,
        view,
        candidates,
        0,
        &mut current,
        &mut matches,
    )?;
    Ok(matches)
}

#[allow(clippy::too_many_arguments)]
fn scan_rec<'a>(
    data: &[&'a TableData],
    tables: &[ScopeTable],
    s: &Select,
    view: ReadView,
    candidates: &[Option<Vec<usize>>],
    depth: usize,
    current: &mut Vec<(usize, &'a [Value])>,
    matches: &mut Vec<Matched>,
) -> Result<(), DbError> {
    if depth == tables.len() {
        let scope = build_scope(tables, current);
        if let Some(sel) = &s.selection {
            if !eval(sel, &scope)?.is_truthy() {
                return Ok(());
            }
        }
        // Materialize values only now that the predicate has accepted the
        // row combination; rejected rows are never cloned.
        matches.push(Matched {
            slots: current.iter().map(|(slot, _)| *slot).collect(),
            values: current.iter().map(|(_, v)| v.to_vec()).collect(),
        });
        return Ok(());
    }
    let rows = &data[depth].rows;
    let mut index_slots;
    let mut full_walk;
    let slot_indices: &mut dyn Iterator<Item = usize> = match &candidates[depth] {
        Some(slots) => {
            index_slots = slots.iter().copied();
            &mut index_slots
        }
        None => {
            full_walk = 0..rows.len();
            &mut full_walk
        }
    };
    for slot_idx in slot_indices {
        let Some(version) = view.visible_version(&rows[slot_idx]) else {
            continue;
        };
        current.push((slot_idx, version.values.as_slice()));
        // Apply the join condition as soon as both sides are bound.
        let join_ok = if depth == 0 {
            true
        } else {
            let scope = build_scope(&tables[..=depth], current);
            eval(&s.joins[depth - 1].on, &scope)?.is_truthy()
        };
        if join_ok {
            scan_rec(
                data,
                tables,
                s,
                view,
                candidates,
                depth + 1,
                current,
                matches,
            )?;
        }
        current.pop();
    }
    Ok(())
}
fn build_scope<'a>(tables: &'a [ScopeTable], current: &'a [(usize, &'a [Value])]) -> EvalScope<'a> {
    EvalScope {
        tables: tables
            .iter()
            .zip(current)
            .map(|(t, &(_, values))| EvalTable {
                effective_name: &t.effective,
                columns: &t.columns,
                values,
            })
            .collect(),
    }
}

fn projection_name(expr: &Expr, alias: &Option<String>) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    match expr {
        Expr::Column(c) => c.column.clone(),
        other => other.to_string(),
    }
}

/// Apply projection, ORDER BY, and LIMIT to the matched rows.
fn project(
    tables: &[ScopeTable],
    s: &Select,
    mut matches: Vec<Matched>,
) -> Result<ResultSet, DbError> {
    let aggregate_mode = s
        .projection
        .iter()
        .any(|item| matches!(item, SelectItem::Expr { expr, .. } if expr.contains_aggregate()));

    if aggregate_mode {
        let mut columns = Vec::new();
        let mut row = Vec::new();
        for item in &s.projection {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(DbError::Unsupported(
                    "wildcard projection mixed with aggregates".into(),
                ));
            };
            columns.push(projection_name(expr, alias));
            row.push(eval_aggregate(expr, tables, &matches)?);
        }
        return Ok(ResultSet {
            columns,
            rows: vec![row],
        });
    }

    // ORDER BY before projection (sort keys may not be projected).
    if !s.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Value>, Matched)> = Vec::with_capacity(matches.len());
        for m in matches {
            let mut keys = Vec::with_capacity(s.order_by.len());
            {
                let current: Vec<(usize, &[Value])> = m
                    .slots
                    .iter()
                    .copied()
                    .zip(m.values.iter().map(Vec::as_slice))
                    .collect();
                let scope = build_scope(tables, &current);
                for ob in &s.order_by {
                    keys.push(eval(&ob.expr, &scope)?);
                }
            }
            keyed.push((keys, m));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, ob) in s.order_by.iter().enumerate() {
                let ord = ka[i].compare(&kb[i]).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if ob.asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        matches = keyed.into_iter().map(|(_, m)| m).collect();
    }

    if let Some(limit) = s.limit {
        matches.truncate(limit as usize);
    }

    // Column headers.
    let mut columns = Vec::new();
    for item in &s.projection {
        match item {
            SelectItem::Wildcard => {
                for t in tables {
                    columns.extend(t.columns.iter().cloned());
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let t = tables
                    .iter()
                    .find(|t| &t.effective == q)
                    .ok_or_else(|| DbError::UnknownTable(q.clone()))?;
                columns.extend(t.columns.iter().cloned());
            }
            SelectItem::Expr { expr, alias } => columns.push(projection_name(expr, alias)),
        }
    }

    let mut rows = Vec::with_capacity(matches.len());
    for m in &matches {
        let current: Vec<(usize, &[Value])> = m
            .slots
            .iter()
            .copied()
            .zip(m.values.iter().map(Vec::as_slice))
            .collect();
        let scope = build_scope(tables, &current);
        let mut row = Vec::with_capacity(columns.len());
        for item in &s.projection {
            match item {
                SelectItem::Wildcard => {
                    for values in &m.values {
                        row.extend(values.iter().cloned());
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let ti = tables.iter().position(|t| &t.effective == q).unwrap();
                    row.extend(m.values[ti].iter().cloned());
                }
                SelectItem::Expr { expr, .. } => row.push(eval(expr, &scope)?),
            }
        }
        rows.push(row);
    }
    Ok(ResultSet { columns, rows })
}

/// Evaluate an aggregate expression over the matched row set.
fn eval_aggregate(
    expr: &Expr,
    tables: &[ScopeTable],
    matches: &[Matched],
) -> Result<Value, DbError> {
    match expr {
        Expr::Function {
            name,
            args,
            wildcard,
        } => {
            let upper = name.to_ascii_uppercase();
            let per_row = |arg: &Expr| -> Result<Vec<Value>, DbError> {
                matches
                    .iter()
                    .map(|m| {
                        let current: Vec<(usize, &[Value])> = m
                            .slots
                            .iter()
                            .copied()
                            .zip(m.values.iter().map(Vec::as_slice))
                            .collect();
                        eval(arg, &build_scope(tables, &current))
                    })
                    .collect()
            };
            match upper.as_str() {
                "COUNT" if *wildcard => Ok(Value::Int(matches.len() as i64)),
                "COUNT" => {
                    let arg = args.first().ok_or_else(|| {
                        DbError::Unsupported("COUNT requires an argument or *".into())
                    })?;
                    let vals = per_row(arg)?;
                    Ok(Value::Int(
                        vals.iter().filter(|v| !v.is_null()).count() as i64
                    ))
                }
                "SUM" | "AVG" | "MIN" | "MAX" => {
                    let arg = args.first().ok_or_else(|| {
                        DbError::Unsupported(format!("{upper} requires an argument"))
                    })?;
                    let vals: Vec<Value> =
                        per_row(arg)?.into_iter().filter(|v| !v.is_null()).collect();
                    if vals.is_empty() {
                        return Ok(Value::Null);
                    }
                    match upper.as_str() {
                        "SUM" => {
                            let mut acc = vals[0].clone();
                            for v in &vals[1..] {
                                acc = acc.add(v)?;
                            }
                            Ok(acc)
                        }
                        "AVG" => {
                            let mut acc = vals[0].clone();
                            for v in &vals[1..] {
                                acc = acc.add(v)?;
                            }
                            acc.div(&Value::Int(vals.len() as i64))
                        }
                        "MIN" => Ok(fold_extreme(vals, std::cmp::Ordering::Less)),
                        "MAX" => Ok(fold_extreme(vals, std::cmp::Ordering::Greater)),
                        _ => unreachable!(),
                    }
                }
                other => Err(DbError::Unsupported(format!("function {other}"))),
            }
        }
        Expr::Literal(lit) => Ok(Value::from_literal(lit)),
        Expr::Binary { left, op, right } => {
            let l = eval_aggregate(left, tables, matches)?;
            let r = eval_aggregate(right, tables, matches)?;
            use acidrain_sql::ast::BinOp;
            match op {
                BinOp::Add => l.add(&r),
                BinOp::Sub => l.sub(&r),
                BinOp::Mul => l.mul(&r),
                BinOp::Div => l.div(&r),
                _ => Err(DbError::Unsupported(
                    "comparison over aggregates is not supported".into(),
                )),
            }
        }
        Expr::Unary {
            op: acidrain_sql::ast::UnaryOp::Neg,
            expr,
        } => eval_aggregate(expr, tables, matches)?.neg(),
        _ => Err(DbError::Unsupported(
            "non-aggregate expression in aggregate projection".into(),
        )),
    }
}

fn fold_extreme(vals: Vec<Value>, keep: std::cmp::Ordering) -> Value {
    let mut iter = vals.into_iter();
    let mut best = iter.next().expect("non-empty");
    for v in iter {
        if v.compare(&best) == Some(keep) {
            best = v;
        }
    }
    best
}

// ---------------------------------------------------------------------------
// INSERT

fn exec_insert(db: &Database, txn: &mut TxnState, i: &Insert) -> Result<ResultSet, DbError> {
    let table_idx = table_index(db, &i.table)?;
    let table_schema = db
        .schema
        .table(&i.table)
        .ok_or_else(|| DbError::UnknownTable(i.table.clone()))?
        .clone();

    acquire(
        db,
        txn,
        ResourceId::Table(table_idx),
        LockMode::IntentionExclusive,
    )?;

    // Build every row before touching storage so the statement is atomic.
    let empty_scope = EvalScope::default();
    let mut new_rows: Vec<Vec<Value>> = Vec::with_capacity(i.rows.len());
    for row_exprs in &i.rows {
        let provided: Vec<&str> = if i.columns.is_empty() {
            table_schema
                .columns
                .iter()
                .map(|c| c.name.as_str())
                .collect()
        } else {
            i.columns.iter().map(String::as_str).collect()
        };
        if row_exprs.len() != provided.len() {
            return Err(DbError::Type(format!(
                "INSERT into {} provides {} values for {} columns",
                i.table,
                row_exprs.len(),
                provided.len()
            )));
        }
        let mut values = Vec::with_capacity(table_schema.columns.len());
        for col in &table_schema.columns {
            match provided.iter().position(|p| *p == col.name) {
                Some(pos) => values.push(eval(&row_exprs[pos], &empty_scope)?),
                None if col.auto_increment => values.push(Value::Null), // filled below
                None => match &col.default {
                    Some(lit) => values.push(Value::from_literal(lit)),
                    None => values.push(Value::Null),
                },
            }
        }
        // Unknown target columns are an error.
        for p in &provided {
            if table_schema.column(p).is_none() {
                return Err(DbError::UnknownColumn(format!("{}.{}", i.table, p)));
            }
        }
        new_rows.push(values);
    }

    // Pin the table's write latch for the checks and the apply phase.
    let token = db.obs.latch_wait_start();
    let mut table = db.storage.write(table_idx);
    db.obs.latch_acquired(token, txn.id.0);

    // Unique-constraint checks against live rows and within the batch.
    // Auto-increment unique columns are checked too: an *explicit* value
    // supplied for one must not duplicate a stored row. Values the engine
    // will assign below are still `Null` here and skip the check.
    let unique_cols: Vec<usize> = table_schema
        .columns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.unique)
        .map(|(idx, _)| idx)
        .collect();
    let current = db.current_read(txn.id);
    for &col in &unique_cols {
        for (ri, row) in new_rows.iter().enumerate() {
            let v = &row[col];
            if v.is_null() {
                continue;
            }
            // Within the batch.
            for other in &new_rows[..ri] {
                if other[col].sql_eq(v).unwrap_or(false) {
                    return Err(DbError::ConstraintViolation(format!(
                        "duplicate value {v} for unique column {}.{}",
                        i.table, table_schema.columns[col].name
                    )));
                }
            }
            // Unique columns are always index-backed, so the duplicate
            // probe is a point lookup unless the index path is disabled.
            // Buckets are visibility-agnostic supersets: every stored
            // version carrying a `sql_eq`-equal value is in the bucket.
            let dup_candidates: Option<Vec<usize>> = if db.use_indexes() {
                table.indexes.probe(col, v)
            } else {
                None
            };
            db.obs.index_probe(txn.id.0, dup_candidates.is_some());
            let mut index_slots;
            let mut full_walk;
            let slot_indices: &mut dyn Iterator<Item = usize> = match &dup_candidates {
                Some(slots) => {
                    index_slots = slots.iter().copied();
                    &mut index_slots
                }
                None => {
                    full_walk = 0..table.rows.len();
                    &mut full_walk
                }
            };
            // Against stored rows: committed-visible duplicates violate;
            // a duplicate from an in-flight writer — uncommitted
            // (`begin_ts` unset) *or* stamped by a commit that has not yet
            // published a timestamp our clock bound covers — blocks
            // (InnoDB waits on the duplicate-key lock). Every conflicting
            // writer is collected: waiting out only one would let another
            // commit its duplicate unobserved.
            let mut blocked: Vec<usize> = Vec::new();
            for slot_idx in slot_indices {
                let slot = &table.rows[slot_idx];
                if let Some(version) = current.visible_version(slot) {
                    if version.values[col].sql_eq(v).unwrap_or(false) {
                        return Err(DbError::ConstraintViolation(format!(
                            "duplicate value {v} for unique column {}.{}",
                            i.table, table_schema.columns[col].name
                        )));
                    }
                }
                if let Some(last) = slot.versions.last() {
                    if !last.created_by(txn.id)
                        && last.is_open()
                        && !current.sees(last)
                        && last.values[col].sql_eq(v).unwrap_or(false)
                    {
                        blocked.push(slot_idx);
                    }
                }
            }
            if !blocked.is_empty() {
                // Wait for every conflicting writer to finish, acquiring
                // in ascending slot order (the latch guard drops on a
                // WouldBlock return and the statement retries whole).
                for &slot_idx in &blocked {
                    acquire(
                        db,
                        txn,
                        ResourceId::Row(table_idx, slot_idx),
                        LockMode::Shared,
                    )?;
                }
                // All granted: none of the writers can have been stamped
                // or rolled back under our latch, so each was stamped
                // before we latched and has since published and released.
                // Re-check every one under a single refreshed clock,
                // which now covers them all.
                let fresh = db.current_read(txn.id);
                for &slot_idx in &blocked {
                    if let Some(version) = fresh.visible_version(&table.rows[slot_idx]) {
                        if version.values[col].sql_eq(v).unwrap_or(false) {
                            return Err(DbError::ConstraintViolation(format!(
                                "duplicate value {v} for unique column {}.{}",
                                i.table, table_schema.columns[col].name
                            )));
                        }
                    }
                }
            }
        }
    }

    // Apply: assign auto-increment values and append slots.
    let n = new_rows.len();
    let mut last_insert_id = Value::Null;
    for mut values in new_rows {
        for (ci, col) in table_schema.columns.iter().enumerate() {
            if col.auto_increment && values[ci].is_null() {
                let v = table.next_auto();
                values[ci] = Value::Int(v);
                last_insert_id = Value::Int(v);
            } else if col.auto_increment {
                if let Value::Int(v) = values[ci] {
                    last_insert_id = Value::Int(v);
                    if v >= table.auto_counter {
                        table.auto_counter = v + 1;
                    }
                }
            }
        }
        let slot_idx = table.push_row(RowVersion::uncommitted(values, txn.id));
        // New rows are ours; the lock cannot block.
        acquire(
            db,
            txn,
            ResourceId::Row(table_idx, slot_idx),
            LockMode::Exclusive,
        )?;
        txn.undo.push(UndoRecord::Created {
            table: table_idx,
            row: slot_idx,
            version: 0,
        });
    }
    Ok(ResultSet {
        columns: vec!["affected".to_string(), "last_insert_id".to_string()],
        rows: vec![vec![Value::Int(n as i64), last_insert_id]],
    })
}

// ---------------------------------------------------------------------------
// UPDATE / DELETE

/// One UPDATE/DELETE target: a row slot, the index of the version visible
/// under the statement's view, and that version's values.
struct Target {
    slot: usize,
    version: usize,
    values: Vec<Value>,
}

/// Identify rows matching `selection` under `view` (a current read).
/// `candidates`, when present, restricts the walk to an ascending
/// index-supplied slot list; index buckets are visibility-agnostic
/// supersets, so the restriction never drops a matching row.
fn identify_targets(
    table: &TableData,
    view: ReadView,
    effective: &str,
    columns: &[String],
    selection: Option<&Expr>,
    candidates: Option<&[usize]>,
) -> Result<Vec<Target>, DbError> {
    let mut out = Vec::new();
    let mut index_slots;
    let mut full_walk;
    let slot_indices: &mut dyn Iterator<Item = usize> = match candidates {
        Some(slots) => {
            index_slots = slots.iter().copied();
            &mut index_slots
        }
        None => {
            full_walk = 0..table.rows.len();
            &mut full_walk
        }
    };
    for slot_idx in slot_indices {
        let slot = &table.rows[slot_idx];
        let Some(pos) = slot.versions.iter().rposition(|v| view.sees(v)) else {
            continue;
        };
        let version = &slot.versions[pos];
        let matched = match selection {
            Some(sel) => {
                let scope = EvalScope::single(effective, columns, &version.values);
                eval(sel, &scope)?.is_truthy()
            }
            None => true,
        };
        if matched {
            out.push(Target {
                slot: slot_idx,
                version: pos,
                values: version.values.clone(),
            });
        }
    }
    Ok(out)
}

/// Lock targets and run Snapshot Isolation first-updater-wins validation.
fn lock_and_validate_targets(
    db: &Database,
    txn: &TxnState,
    table_idx: usize,
    table: &TableData,
    targets: &[Target],
) -> Result<(), DbError> {
    for t in targets {
        acquire(
            db,
            txn,
            ResourceId::Row(table_idx, t.slot),
            LockMode::Exclusive,
        )?;
    }
    if txn.isolation.validates_write_snapshot() {
        if let Some(snapshot) = txn.snapshot_ts {
            for t in targets {
                let slot = &table.rows[t.slot];
                let modified_since = slot.versions.iter().any(|v| {
                    !v.created_by(txn.id)
                        && (v.begin_ts().is_some_and(|ts| ts > snapshot)
                            || v.end_ts().is_some_and(|ts| ts > snapshot))
                });
                if modified_since {
                    return Err(DbError::WriteConflict(format!(
                        "row {} of table {} changed after this transaction's snapshot",
                        t.slot, table.name
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Identify the target rows of an UPDATE/DELETE under a current read and
/// X-lock them, returning targets consistent with a clock bound that
/// covers every commit affecting them.
///
/// The table's version chains are frozen while the statement holds the
/// write latch, but the commit clock and the lock manager are not: a
/// commit that stamped this table's versions *before* the statement
/// latched may publish its timestamp and release its row locks
/// mid-statement. A view drawn from the pre-publication clock would
/// identify such a commit's already-ended version as current and — once
/// the committer's locks are gone — clobber its end stamp. So the clock
/// is re-read after every lock grant and the targets re-identified until
/// stable: locks are released only after publication, so a grant
/// guarantees the refreshed clock covers every commit that touched the
/// granted rows.
///
/// Terminates because the chains are frozen under the latch: successive
/// clock reads are nondecreasing, and visibility against the table's
/// fixed stamps changes at only finitely many timestamps.
///
/// `candidates` is computed once by the caller — version chains *and*
/// indexes are frozen under the write latch, so one probe serves every
/// re-identification round.
#[allow(clippy::too_many_arguments)]
fn lock_current_targets(
    db: &Database,
    txn: &TxnState,
    table_idx: usize,
    table: &TableData,
    effective: &str,
    columns: &[String],
    selection: Option<&Expr>,
    candidates: Option<&[usize]>,
) -> Result<Vec<Target>, DbError> {
    let mut view = db.current_read(txn.id);
    let mut targets = identify_targets(table, view, effective, columns, selection, candidates)?;
    loop {
        lock_and_validate_targets(db, txn, table_idx, table, &targets)?;
        let fresh = db.current_read(txn.id);
        if fresh == view {
            return Ok(targets);
        }
        let fresh_targets =
            identify_targets(table, fresh, effective, columns, selection, candidates)?;
        let stable = fresh_targets.len() == targets.len()
            && fresh_targets
                .iter()
                .zip(&targets)
                .all(|(a, b)| a.slot == b.slot && a.version == b.version);
        view = fresh;
        targets = fresh_targets;
        if stable {
            return Ok(targets);
        }
    }
}

/// Index candidates for a single-table UPDATE/DELETE selection, or `None`
/// for a full walk. Must be called under the table's write latch so the
/// probe sees the same frozen index state target identification will.
/// Fires the hit/fallback counter after the route is fixed; unpredicated
/// statements are honest full walks and count as neither.
fn write_candidates(
    db: &Database,
    txn: &TxnState,
    table: &TableData,
    effective: &str,
    columns: &[String],
    selection: Option<&Expr>,
) -> Option<Vec<usize>> {
    let sel = selection?;
    let mut result = None;
    if db.use_indexes() {
        let plan_tables = [PlanTable {
            effective_name: effective,
            columns,
        }];
        if let Some(constraints) = equality_constraints(&[sel], &plan_tables) {
            result = constraints
                .iter()
                .find_map(|c| table.indexes.probe(c.column, &c.value));
            // No usable equality: try an ordered range probe before
            // surrendering to the full walk.
            if result.is_none() && db.use_range_indexes() {
                if let Some(ranges) = range_constraints(&[sel], &plan_tables) {
                    result = ranges.iter().find_map(|r| {
                        table
                            .indexes
                            .probe_range(r.column, r.lower.as_ref(), r.upper.as_ref())
                    });
                }
            }
        }
    }
    db.obs.index_probe(txn.id.0, result.is_some());
    result
}

fn exec_update(db: &Database, txn: &mut TxnState, u: &Update) -> Result<ResultSet, DbError> {
    let table_idx = table_index(db, &u.table)?;
    let columns: Vec<String> = db
        .schema
        .table(&u.table)
        .ok_or_else(|| DbError::UnknownTable(u.table.clone()))?
        .column_names()
        .map(str::to_string)
        .collect();

    acquire(
        db,
        txn,
        ResourceId::Table(table_idx),
        LockMode::IntentionExclusive,
    )?;
    let token = db.obs.latch_wait_start();
    let mut table = db.storage.write(table_idx);
    db.obs.latch_acquired(token, txn.id.0);
    // Pin the SI snapshot before writing so validation has a baseline even
    // when the transaction starts with a write.
    let _ = db.read_snapshot_ts(txn);
    let candidates = write_candidates(db, txn, &table, &u.table, &columns, u.selection.as_ref());
    let targets = lock_current_targets(
        db,
        txn,
        table_idx,
        &table,
        &u.table,
        &columns,
        u.selection.as_ref(),
        candidates.as_deref(),
    )?;

    // Compute all new value vectors before mutating (statement atomicity).
    let mut assignment_indices = Vec::with_capacity(u.assignments.len());
    for a in &u.assignments {
        let idx = columns
            .iter()
            .position(|c| c == &a.column)
            .ok_or_else(|| DbError::UnknownColumn(format!("{}.{}", u.table, a.column)))?;
        assignment_indices.push(idx);
    }
    let mut updated: Vec<Vec<Value>> = Vec::with_capacity(targets.len());
    for t in &targets {
        let scope = EvalScope::single(&u.table, &columns, &t.values);
        let mut new_values = t.values.clone();
        for (a, &ci) in u.assignments.iter().zip(&assignment_indices) {
            new_values[ci] = eval(&a.value, &scope)?;
        }
        updated.push(new_values);
    }

    // Apply: end the identified version (by its recorded index — the
    // chain is frozen under the latch), append the new one.
    let n = targets.len();
    for (t, new_values) in targets.into_iter().zip(updated) {
        end_target_version(&table, txn.id, &t);
        txn.undo.push(UndoRecord::Ended {
            table: table_idx,
            row: t.slot,
            version: t.version,
        });
        let created = table.push_version(t.slot, RowVersion::uncommitted(new_values, txn.id));
        txn.undo.push(UndoRecord::Created {
            table: table_idx,
            row: t.slot,
            version: created,
        });
    }
    Ok(ResultSet::affected(n))
}

fn exec_delete(db: &Database, txn: &mut TxnState, d: &Delete) -> Result<ResultSet, DbError> {
    let table_idx = table_index(db, &d.table)?;
    let columns: Vec<String> = db
        .schema
        .table(&d.table)
        .ok_or_else(|| DbError::UnknownTable(d.table.clone()))?
        .column_names()
        .map(str::to_string)
        .collect();

    acquire(
        db,
        txn,
        ResourceId::Table(table_idx),
        LockMode::IntentionExclusive,
    )?;
    let token = db.obs.latch_wait_start();
    let table = db.storage.write(table_idx);
    db.obs.latch_acquired(token, txn.id.0);
    let _ = db.read_snapshot_ts(txn);
    let candidates = write_candidates(db, txn, &table, &d.table, &columns, d.selection.as_ref());
    let targets = lock_current_targets(
        db,
        txn,
        table_idx,
        &table,
        &d.table,
        &columns,
        d.selection.as_ref(),
        candidates.as_deref(),
    )?;

    let n = targets.len();
    for t in targets {
        end_target_version(&table, txn.id, &t);
        txn.undo.push(UndoRecord::Ended {
            table: table_idx,
            row: t.slot,
            version: t.version,
        });
    }
    Ok(ResultSet::affected(n))
}

/// Mark a locked target's version as ended by `txn`. The X lock plus the
/// post-grant re-identification in [`lock_current_targets`] guarantee the
/// version is live: any committed ender would have published a timestamp
/// the refreshed clock bound covers, making the version invisible, and an
/// uncommitted ender would still hold the row lock.
fn end_target_version(table: &TableData, txn: TxnId, target: &Target) {
    let version = &table.rows[target.slot].versions[target.version];
    debug_assert!(version.is_open(), "locked target version already ended");
    version.mark_ended(txn);
}

// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use acidrain_sql::schema::{ColumnDef, ColumnType, Schema, TableSchema};

    use crate::db::Database;
    use crate::error::DbError;
    use crate::isolation::IsolationLevel;
    use crate::value::Value;

    fn shop_schema() -> Schema {
        Schema::new()
            .with_table(TableSchema::new(
                "product",
                vec![
                    ColumnDef::new("id", ColumnType::Int).auto_increment(),
                    ColumnDef::new("name", ColumnType::Str),
                    ColumnDef::new("stock", ColumnType::Int),
                    ColumnDef::new("price", ColumnType::Int),
                ],
            ))
            .with_table(TableSchema::new(
                "cart_items",
                vec![
                    ColumnDef::new("id", ColumnType::Int).auto_increment(),
                    ColumnDef::new("cart_id", ColumnType::Int),
                    ColumnDef::new("product_id", ColumnType::Int),
                    ColumnDef::new("qty", ColumnType::Int),
                ],
            ))
            .with_table(TableSchema::new(
                "users",
                vec![
                    ColumnDef::new("id", ColumnType::Int).auto_increment(),
                    ColumnDef::new("email", ColumnType::Str).unique(),
                ],
            ))
    }

    fn db() -> Arc<Database> {
        let db = Database::new(shop_schema(), IsolationLevel::ReadCommitted);
        db.seed(
            "product",
            vec![
                vec![Value::Int(1), "pen".into(), Value::Int(10), Value::Int(2)],
                vec![
                    Value::Int(2),
                    "laptop".into(),
                    Value::Int(3),
                    Value::Int(900),
                ],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn basic_select_and_projection() {
        let db = db();
        let mut c = db.connect();
        let rs = c
            .execute("SELECT name, stock FROM product WHERE price > 100")
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.value(0, "name"), Some(&Value::Str("laptop".into())));
        let rs = c
            .execute("SELECT * FROM product ORDER BY price DESC")
            .unwrap();
        assert_eq!(rs.value(0, "name"), Some(&Value::Str("laptop".into())));
        let rs = c
            .execute("SELECT * FROM product ORDER BY price DESC LIMIT 1")
            .unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn aggregates() {
        let db = db();
        let mut c = db.connect();
        assert_eq!(c.query_i64("SELECT COUNT(*) FROM product").unwrap(), 2);
        assert_eq!(c.query_i64("SELECT SUM(stock) FROM product").unwrap(), 13);
        assert_eq!(c.query_i64("SELECT MIN(price) FROM product").unwrap(), 2);
        assert_eq!(c.query_i64("SELECT MAX(price) FROM product").unwrap(), 900);
        assert_eq!(
            c.query_i64("SELECT SUM(stock * price) FROM product")
                .unwrap(),
            10 * 2 + 3 * 900
        );
        // Empty SUM is NULL.
        let rs = c
            .execute("SELECT SUM(stock) FROM product WHERE price > 99999")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Null));
        assert_eq!(
            c.query_i64("SELECT COUNT(*) FROM product WHERE price > 99999")
                .unwrap(),
            0
        );
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let db = db();
        let mut c = db.connect();
        c.execute("INSERT INTO product (name, stock, price) VALUES ('mug', 5, 7)")
            .unwrap();
        assert_eq!(c.query_i64("SELECT COUNT(*) FROM product").unwrap(), 3);
        // Auto-increment continued from the seed.
        assert_eq!(
            c.query_i64("SELECT id FROM product WHERE name = 'mug'")
                .unwrap(),
            3
        );
        let rs = c
            .execute("UPDATE product SET stock = stock - 2 WHERE name = 'mug'")
            .unwrap();
        assert_eq!(rs.affected_rows(), 1);
        assert_eq!(
            c.query_i64("SELECT stock FROM product WHERE name = 'mug'")
                .unwrap(),
            3
        );
        c.execute("DELETE FROM product WHERE name = 'mug'").unwrap();
        assert_eq!(c.query_i64("SELECT COUNT(*) FROM product").unwrap(), 2);
    }

    #[test]
    fn join_select() {
        let db = db();
        db.seed(
            "cart_items",
            vec![
                vec![Value::Null, Value::Int(1), Value::Int(1), Value::Int(2)],
                vec![Value::Null, Value::Int(1), Value::Int(2), Value::Int(1)],
                vec![Value::Null, Value::Int(9), Value::Int(1), Value::Int(5)],
            ],
        )
        .unwrap();
        let mut c = db.connect();
        let total = c
            .query_i64(
                "SELECT SUM(ci.qty * p.price) FROM cart_items AS ci INNER JOIN product AS p \
                 ON p.id = ci.product_id WHERE ci.cart_id = 1",
            )
            .unwrap();
        assert_eq!(total, 2 * 2 + 900);
    }

    #[test]
    fn transactions_commit_and_rollback() {
        let db = db();
        let mut c = db.connect();
        c.execute("BEGIN").unwrap();
        c.execute("UPDATE product SET stock = 0 WHERE id = 1")
            .unwrap();
        c.execute("ROLLBACK").unwrap();
        assert_eq!(
            c.query_i64("SELECT stock FROM product WHERE id = 1")
                .unwrap(),
            10
        );
        c.execute("BEGIN").unwrap();
        c.execute("UPDATE product SET stock = 0 WHERE id = 1")
            .unwrap();
        c.execute("COMMIT").unwrap();
        assert_eq!(
            c.query_i64("SELECT stock FROM product WHERE id = 1")
                .unwrap(),
            0
        );
    }

    #[test]
    fn autocommit_zero_opens_transaction() {
        let db = db();
        let mut c1 = db.connect();
        let mut c2 = db.connect();
        c1.execute("SET autocommit=0").unwrap();
        c1.execute("UPDATE product SET stock = 99 WHERE id = 1")
            .unwrap();
        // Uncommitted: another session still sees the old value.
        assert_eq!(
            c2.query_i64("SELECT stock FROM product WHERE id = 1")
                .unwrap(),
            10
        );
        c1.execute("COMMIT").unwrap();
        assert_eq!(
            c2.query_i64("SELECT stock FROM product WHERE id = 1")
                .unwrap(),
            99
        );
    }

    #[test]
    fn set_autocommit_one_commits_open_txn() {
        let db = db();
        let mut c = db.connect();
        c.execute("SET autocommit=0").unwrap();
        c.execute("UPDATE product SET stock = 42 WHERE id = 1")
            .unwrap();
        c.execute("SET autocommit=1").unwrap();
        assert!(!c.in_transaction());
        assert_eq!(db.table_rows("product").unwrap()[0][2], Value::Int(42));
    }

    #[test]
    fn dirty_read_only_under_read_uncommitted() {
        let db = db();
        let mut writer = db.connect();
        writer.execute("BEGIN").unwrap();
        writer
            .execute("UPDATE product SET stock = 0 WHERE id = 1")
            .unwrap();

        let mut rc = db.connect();
        rc.set_isolation(IsolationLevel::ReadCommitted);
        assert_eq!(
            rc.query_i64("SELECT stock FROM product WHERE id = 1")
                .unwrap(),
            10
        );

        let mut ru = db.connect();
        ru.set_isolation(IsolationLevel::ReadUncommitted);
        assert_eq!(
            ru.query_i64("SELECT stock FROM product WHERE id = 1")
                .unwrap(),
            0
        );

        writer.execute("ROLLBACK").unwrap();
        assert_eq!(
            ru.query_i64("SELECT stock FROM product WHERE id = 1")
                .unwrap(),
            10
        );
    }

    #[test]
    fn write_locks_block_concurrent_writers() {
        let db = db();
        let mut a = db.connect();
        let mut b = db.connect();
        a.execute("BEGIN").unwrap();
        a.execute("UPDATE product SET stock = 5 WHERE id = 1")
            .unwrap();
        b.execute("BEGIN").unwrap();
        let err = b
            .try_execute("UPDATE product SET stock = 6 WHERE id = 1")
            .unwrap_err();
        assert!(matches!(err, DbError::WouldBlock { .. }), "{err}");
        a.execute("COMMIT").unwrap();
        // Retry succeeds and sees a's committed value underneath.
        b.try_execute("UPDATE product SET stock = stock + 1 WHERE id = 1")
            .unwrap();
        b.execute("COMMIT").unwrap();
        assert_eq!(db.table_rows("product").unwrap()[0][2], Value::Int(6));
    }

    #[test]
    fn select_for_update_blocks_readers_for_update() {
        let db = db();
        let mut a = db.connect();
        let mut b = db.connect();
        a.execute("BEGIN").unwrap();
        a.execute("SELECT stock FROM product WHERE id = 1 FOR UPDATE")
            .unwrap();
        b.execute("BEGIN").unwrap();
        let err = b
            .try_execute("SELECT stock FROM product WHERE id = 1 FOR UPDATE")
            .unwrap_err();
        assert!(matches!(err, DbError::WouldBlock { .. }));
        // Plain reads are not blocked (MVCC).
        assert_eq!(
            b.query_i64("SELECT stock FROM product WHERE id = 1")
                .unwrap(),
            10
        );
        a.execute("COMMIT").unwrap();
    }

    #[test]
    fn unique_constraint_enforced() {
        let db = db();
        let mut c = db.connect();
        c.execute("INSERT INTO users (email) VALUES ('a@example.com')")
            .unwrap();
        let err = c
            .execute("INSERT INTO users (email) VALUES ('a@example.com')")
            .unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolation(_)));
        // Batch-internal duplicates are also rejected atomically.
        let err = c
            .execute("INSERT INTO users (email) VALUES ('b@x.com'), ('b@x.com')")
            .unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolation(_)));
        let mut c2 = db.connect();
        assert_eq!(c2.query_i64("SELECT COUNT(*) FROM users").unwrap(), 1);
    }

    #[test]
    fn deadlock_detected_and_victim_rolled_back() {
        let db = db();
        let mut a = db.connect();
        let mut b = db.connect();
        a.execute("BEGIN").unwrap();
        b.execute("BEGIN").unwrap();
        a.execute("UPDATE product SET stock = 1 WHERE id = 1")
            .unwrap();
        b.execute("UPDATE product SET stock = 2 WHERE id = 2")
            .unwrap();
        assert!(matches!(
            b.try_execute("UPDATE product SET stock = 3 WHERE id = 1"),
            Err(DbError::WouldBlock { .. })
        ));
        let err = a
            .try_execute("UPDATE product SET stock = 4 WHERE id = 2")
            .unwrap_err();
        assert_eq!(err, DbError::Deadlock);
        assert!(!a.in_transaction());
        // b can proceed now.
        b.try_execute("UPDATE product SET stock = 3 WHERE id = 1")
            .unwrap();
        b.execute("COMMIT").unwrap();
        assert_eq!(db.table_rows("product").unwrap()[0][2], Value::Int(3));
    }

    #[test]
    fn snapshot_isolation_first_updater_wins() {
        let db = db();
        let mut a = db.connect();
        let mut b = db.connect();
        a.set_isolation(IsolationLevel::SnapshotIsolation);
        b.set_isolation(IsolationLevel::SnapshotIsolation);
        a.execute("BEGIN").unwrap();
        b.execute("BEGIN").unwrap();
        // Pin both snapshots.
        a.execute("SELECT stock FROM product WHERE id = 1").unwrap();
        b.execute("SELECT stock FROM product WHERE id = 1").unwrap();
        a.execute("UPDATE product SET stock = 9 WHERE id = 1")
            .unwrap();
        a.execute("COMMIT").unwrap();
        let err = b
            .try_execute("UPDATE product SET stock = 8 WHERE id = 1")
            .unwrap_err();
        assert!(matches!(err, DbError::WriteConflict(_)), "{err}");
        assert!(!b.in_transaction());
        assert_eq!(db.table_rows("product").unwrap()[0][2], Value::Int(9));
    }

    #[test]
    fn mysql_rr_reads_snapshot_but_allows_lost_update() {
        let db = db();
        let mut a = db.connect();
        let mut b = db.connect();
        a.set_isolation(IsolationLevel::MySqlRepeatableRead);
        b.set_isolation(IsolationLevel::MySqlRepeatableRead);
        a.execute("BEGIN").unwrap();
        let stock_a = a
            .query_i64("SELECT stock FROM product WHERE id = 1")
            .unwrap();
        assert_eq!(stock_a, 10);
        // b commits a decrement.
        b.execute("UPDATE product SET stock = stock - 4 WHERE id = 1")
            .unwrap();
        // a's repeated read still sees 10 (repeatable read)...
        assert_eq!(
            a.query_i64("SELECT stock FROM product WHERE id = 1")
                .unwrap(),
            10
        );
        // ...but a's blind write based on the stale read clobbers b's
        // update: the classic Lost Update MySQL-RR admits.
        a.execute(&format!(
            "UPDATE product SET stock = {} WHERE id = 1",
            stock_a - 1
        ))
        .unwrap();
        a.execute("COMMIT").unwrap();
        assert_eq!(db.table_rows("product").unwrap()[0][2], Value::Int(9));
    }

    #[test]
    fn true_repeatable_read_prevents_lost_update_via_deadlock() {
        let db = db();
        let mut a = db.connect();
        let mut b = db.connect();
        a.set_isolation(IsolationLevel::RepeatableRead);
        b.set_isolation(IsolationLevel::RepeatableRead);
        a.execute("BEGIN").unwrap();
        b.execute("BEGIN").unwrap();
        a.execute("SELECT stock FROM product WHERE id = 1").unwrap();
        b.execute("SELECT stock FROM product WHERE id = 1").unwrap();
        // Both try to upgrade: one blocks, the other deadlocks.
        let r1 = a.try_execute("UPDATE product SET stock = 9 WHERE id = 1");
        assert!(matches!(r1, Err(DbError::WouldBlock { .. })));
        let r2 = b.try_execute("UPDATE product SET stock = 8 WHERE id = 1");
        assert_eq!(r2.unwrap_err(), DbError::Deadlock);
        // a can now proceed.
        a.try_execute("UPDATE product SET stock = 9 WHERE id = 1")
            .unwrap();
        a.execute("COMMIT").unwrap();
        assert_eq!(db.table_rows("product").unwrap()[0][2], Value::Int(9));
    }

    #[test]
    fn serializable_blocks_phantoms() {
        let db = db();
        let mut a = db.connect();
        let mut b = db.connect();
        a.set_isolation(IsolationLevel::Serializable);
        b.set_isolation(IsolationLevel::Serializable);
        a.execute("BEGIN").unwrap();
        // Predicate read takes a shared table lock.
        a.execute("SELECT COUNT(*) FROM product WHERE price > 1")
            .unwrap();
        b.execute("BEGIN").unwrap();
        let err = b
            .try_execute("INSERT INTO product (name, stock, price) VALUES ('x', 1, 5)")
            .unwrap_err();
        assert!(matches!(err, DbError::WouldBlock { .. }));
        a.execute("COMMIT").unwrap();
        b.try_execute("INSERT INTO product (name, stock, price) VALUES ('x', 1, 5)")
            .unwrap();
        b.execute("COMMIT").unwrap();
    }

    #[test]
    fn phantom_occurs_below_serializable() {
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::RepeatableRead,
            IsolationLevel::SnapshotIsolation,
        ] {
            let db = db();
            let mut a = db.connect();
            let mut b = db.connect();
            a.set_isolation(level);
            b.set_isolation(level);
            a.execute("BEGIN").unwrap();
            let before = a.query_i64("SELECT COUNT(*) FROM product").unwrap();
            assert_eq!(before, 2, "{level}");
            // Concurrent insert commits without blocking.
            b.execute("INSERT INTO product (name, stock, price) VALUES ('x', 1, 5)")
                .unwrap();
            a.execute("COMMIT").unwrap();
            assert_eq!(db.table_rows("product").unwrap().len(), 3, "{level}");
        }
    }

    #[test]
    fn query_log_records_api_tags() {
        let db = db();
        let mut c = db.connect();
        c.set_api("checkout", 7);
        c.execute("SELECT COUNT(*) FROM product").unwrap();
        c.clear_api();
        c.execute("SELECT COUNT(*) FROM cart_items").unwrap();
        let log = db.log_entries();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].api.as_ref().unwrap().name, "checkout");
        assert!(log[1].api.is_none());
    }

    #[test]
    fn blocked_statements_are_not_logged() {
        let db = db();
        let mut a = db.connect();
        let mut b = db.connect();
        a.execute("BEGIN").unwrap();
        a.execute("UPDATE product SET stock = 1 WHERE id = 1")
            .unwrap();
        let _ = b.try_execute("UPDATE product SET stock = 2 WHERE id = 1");
        let logged: Vec<_> = db.log_entries().iter().map(|e| e.sql.clone()).collect();
        assert!(
            !logged.iter().any(|s| s.contains("stock = 2")),
            "{logged:?}"
        );
    }

    #[test]
    fn dropped_connection_rolls_back() {
        let db = db();
        {
            let mut c = db.connect();
            c.execute("BEGIN").unwrap();
            c.execute("UPDATE product SET stock = 0 WHERE id = 1")
                .unwrap();
        }
        assert_eq!(db.table_rows("product").unwrap()[0][2], Value::Int(10));
        assert_eq!(db.active_transactions(), 0);
    }

    #[test]
    fn statement_errors_keep_explicit_transaction_open() {
        let db = db();
        let mut c = db.connect();
        c.execute("BEGIN").unwrap();
        assert!(c.execute("SELECT nope FROM product").is_err());
        assert!(c.in_transaction());
        c.execute("UPDATE product SET stock = 7 WHERE id = 1")
            .unwrap();
        c.execute("COMMIT").unwrap();
        assert_eq!(db.table_rows("product").unwrap()[0][2], Value::Int(7));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let db = db();
        let mut c = db.connect();
        assert!(matches!(
            c.execute("SELECT * FROM nope").unwrap_err(),
            DbError::UnknownTable(_)
        ));
        assert!(matches!(
            c.execute("UPDATE product SET nope = 1").unwrap_err(),
            DbError::UnknownColumn(_)
        ));
        assert!(matches!(
            c.execute("INSERT INTO product (nope) VALUES (1)")
                .unwrap_err(),
            DbError::UnknownColumn(_)
        ));
    }

    /// A schema whose `qty` column is declared-indexed (range-probe
    /// eligible) without being unique.
    fn indexed_schema() -> Schema {
        Schema::new().with_table(TableSchema::new(
            "items",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("qty", ColumnType::Int).indexed(),
                ColumnDef::new("tag", ColumnType::Str),
            ],
        ))
    }

    #[test]
    fn range_predicates_match_full_scan_results() {
        let db = Database::new(indexed_schema(), IsolationLevel::ReadCommitted);
        {
            let mut c = db.connect();
            for i in 0..50i64 {
                c.execute(&format!(
                    "INSERT INTO items (qty, tag) VALUES ({}, 't{}')",
                    i % 10,
                    i
                ))
                .unwrap();
            }
        }
        let queries = [
            "SELECT id FROM items WHERE qty < 3 ORDER BY id",
            "SELECT id FROM items WHERE qty >= 7 ORDER BY id",
            "SELECT id FROM items WHERE qty BETWEEN 2 AND 4 ORDER BY id",
            "SELECT id FROM items WHERE qty NOT BETWEEN 2 AND 4 ORDER BY id",
            "SELECT id FROM items WHERE qty > 1 AND qty < 5 ORDER BY id",
        ];
        for q in queries {
            db.set_use_range_indexes(true);
            let indexed = db.connect().execute(q).unwrap();
            db.set_use_range_indexes(false);
            let scanned = db.connect().execute(q).unwrap();
            assert_eq!(indexed, scanned, "route changed results for {q}");
        }
        db.set_use_range_indexes(true);
        // Writes through a range predicate behave identically too.
        let mut c = db.connect();
        c.execute("UPDATE items SET tag = 'low' WHERE qty < 2")
            .unwrap();
        assert_eq!(
            c.query_i64("SELECT COUNT(*) FROM items WHERE tag = 'low'")
                .unwrap(),
            10
        );
        c.execute("DELETE FROM items WHERE qty BETWEEN 8 AND 9")
            .unwrap();
        assert_eq!(c.query_i64("SELECT COUNT(*) FROM items").unwrap(), 40);
    }

    #[test]
    fn range_probe_counts_as_index_hit() {
        let db = Database::new(indexed_schema(), IsolationLevel::ReadCommitted);
        db.connect()
            .execute("INSERT INTO items (qty, tag) VALUES (5, 'x')")
            .unwrap();
        db.obs.enable();
        let before = db.obs.counters();
        db.connect()
            .execute("SELECT * FROM items WHERE qty < 10")
            .unwrap();
        let mid = db.obs.counters();
        assert_eq!(mid.index_hits, before.index_hits + 1);
        // With range indexes disabled the same predicate is a fallback.
        db.set_use_range_indexes(false);
        db.connect()
            .execute("SELECT * FROM items WHERE qty < 10")
            .unwrap();
        let after = db.obs.counters();
        assert_eq!(after.index_hits, mid.index_hits);
        assert_eq!(after.index_fallbacks, mid.index_fallbacks + 1);
    }
}
