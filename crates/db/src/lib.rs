//! # acidrain-db
//!
//! An in-memory, multi-version transactional database with configurable
//! isolation — the substrate the ACIDRain reproduction runs its attacks
//! against (standing in for MySQL/MariaDB and the Table-2 engines of
//! Warszawski & Bailis, SIGMOD 2017).
//!
//! Design goals, in the paper's terms:
//!
//! * statements execute atomically; every anomaly arises from the
//!   interleaving of statements across transactions — the granularity 2AD
//!   reasons at;
//! * six isolation levels spanning the paper's envelope, including MySQL's
//!   lost-update-admitting "Repeatable Read" (footnote 6) and true
//!   PL-2.99;
//! * `SELECT ... FOR UPDATE`, session autocommit semantics, deadlock
//!   detection, and Snapshot Isolation first-updater-wins;
//! * a general query log tagged with API-call identity — the input to 2AD.
//!
//! ```
//! use acidrain_db::{Database, IsolationLevel, Value};
//! use acidrain_sql::schema::{ColumnDef, ColumnType, Schema, TableSchema};
//!
//! let schema = Schema::new().with_table(TableSchema::new(
//!     "accounts",
//!     vec![
//!         ColumnDef::new("id", ColumnType::Int).auto_increment(),
//!         ColumnDef::new("balance", ColumnType::Int),
//!     ],
//! ));
//! let db = Database::new(schema, IsolationLevel::ReadCommitted);
//! db.seed("accounts", vec![vec![Value::Null, Value::Int(100)]]).unwrap();
//! let mut conn = db.connect();
//! let balance = conn.query_i64("SELECT balance FROM accounts WHERE id = 1").unwrap();
//! assert_eq!(balance, 100);
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod fault;
pub mod index;
pub mod isolation;
pub mod latch_order;
pub mod lock;
pub mod log;
pub mod plan;
pub mod result;
pub mod storage;
pub mod txn;
pub mod value;
pub mod wal;

pub use acidrain_obs::{MetricsReport, Obs, Stopwatch, TraceEvent};
pub use db::{Connection, Database};
pub use error::DbError;
pub use fault::{CrashPoint, CrashSpec, FaultConfig, FaultInjector, FaultStats, InjectedFault};
pub use isolation::{DatabaseProfile, IsolationLevel, PAPER_DATABASES};
pub use log::{ApiTag, LogEntry, StmtOutcome};
pub use result::ResultSet;
pub use txn::TxnId;
pub use value::Value;
pub use wal::{RecoveryInfo, Wal, WalConfig, WalRecordInfo};
