//! Hermetic stand-in for the subset of `rand` this workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate provides a
//! deterministic xorshift-family generator behind the `rand` trait names
//! (`SeedableRng`, `RngCore`, `Rng`, `seq::SliceRandom`). Not
//! cryptographic — it only backs randomized schedule exploration and
//! jitter, where reproducibility under a seed is the actual requirement.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level convenience methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    /// Uniform value in `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end.saturating_sub(range.start).max(1);
        // Multiply-shift mapping avoids modulo bias for small spans.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// Uniform float in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64-seeded xoshiro256** generator — the
    /// stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..(i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seeded() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        // Same seed, same permutation.
        let mut rng2 = StdRng::seed_from_u64(1);
        let mut v2: Vec<u32> = (0..20).collect();
        v2.shuffle(&mut rng2);
        assert_eq!(v, v2);
    }
}
