//! The endpoint registry: every application's API surface, enumerable
//! without the harness.
//!
//! The static 2AD audit (crate `acidrain-static`) needs, for each
//! application, the list of scenarios it can record in one deterministic
//! solo pass — no concurrency, no scheduler — together with the metadata
//! the detector's refinement config depends on (schema, session locking).
//! This module is that registry.
//!
//! Corpus scenarios are **definitionally identical** to the dynamic
//! harness's probe traces (`acidrain-harness::attack::probe_trace`): the
//! same endpoints, invoked with the same arguments, under the same API
//! tags. That identity is what makes the static report a superset of the
//! dynamic one — both detectors lift the same trace, and the static side
//! runs the untargeted search. `tests/static_superset.rs` pins the
//! byte-level equality of the two recordings.

use std::sync::Arc;

use acidrain_db::{Database, IsolationLevel, LogEntry};
use acidrain_sql::schema::Schema;

use crate::booking;
use crate::corpus::all_apps;
use crate::didactic::{self, Bank};
use crate::flexcoin::Flexcoin;
use crate::framework::{
    observed_request, AppResult, CheckoutRequest, FeatureStatus, ShopApp, LAPTOP, PEN, VOUCHER_CODE,
};

/// Quantity of laptops the inventory scenario adds to the cart — shared
/// with the dynamic harness so both record the same probe trace.
pub const INVENTORY_QTY: i64 = 3;

type Recorder = Box<dyn Fn(IsolationLevel) -> AppResult<Vec<LogEntry>> + Send + Sync>;
type StoreFactory = Box<dyn Fn(IsolationLevel) -> Arc<Database> + Send + Sync>;

/// One recordable solo pass over an application's endpoints.
pub struct Scenario {
    /// Scenario name; for corpus apps this is the invariant it exercises
    /// (`"voucher"`, `"inventory"`, `"cart"`).
    pub name: &'static str,
    /// API endpoints the scenario invokes, in order.
    pub endpoints: &'static [&'static str],
    store: StoreFactory,
    recorder: Recorder,
}

impl Scenario {
    fn new(
        name: &'static str,
        endpoints: &'static [&'static str],
        store: impl Fn(IsolationLevel) -> Arc<Database> + Send + Sync + 'static,
        recorder: impl Fn(IsolationLevel) -> AppResult<Vec<LogEntry>> + Send + Sync + 'static,
    ) -> Self {
        Scenario {
            name,
            endpoints,
            store: Box::new(store),
            recorder: Box::new(recorder),
        }
    }

    /// A fresh store in the same initial state [`Scenario::record`] starts
    /// from — the hook the witness replayer uses to re-bind a recorded
    /// schedule to live state. Calling this repeatedly yields independent,
    /// identically seeded databases.
    pub fn make_store(&self, isolation: IsolationLevel) -> Arc<Database> {
        (self.store)(isolation)
    }

    /// Record the scenario's tagged query log in one solo pass against a
    /// fresh store at `isolation`. Deterministic: no concurrent traffic
    /// runs, so the log depends only on the endpoint code.
    pub fn record(&self, isolation: IsolationLevel) -> AppResult<Vec<LogEntry>> {
        (self.recorder)(isolation)
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("endpoints", &self.endpoints)
            .finish_non_exhaustive()
    }
}

/// One application's auditable API surface.
pub struct AppSurface {
    /// Application name (corpus `ShopApp::name`, or the didactic app's).
    pub app: String,
    /// Whether the app serializes same-session requests (the refinement
    /// the dynamic detector applies via session locking on `cart_items`).
    pub session_locked: bool,
    /// The schema the recorded logs are lifted against.
    pub schema: Schema,
    /// Recordable scenarios, one per supported invariant or workflow.
    pub scenarios: Vec<Scenario>,
}

impl std::fmt::Debug for AppSurface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSurface")
            .field("app", &self.app)
            .field("session_locked", &self.session_locked)
            .field("scenarios", &self.scenarios)
            .finish_non_exhaustive()
    }
}

/// The shop invariants a corpus scenario can exercise. Mirrors the
/// harness's `Invariant` so the recordings coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShopScenario {
    Voucher,
    Inventory,
    Cart,
}

/// One deterministic solo pass of a shop scenario. Statement-for-statement
/// identical to the dynamic harness's `probe_trace`.
fn record_shop(
    app: &dyn ShopApp,
    scenario: ShopScenario,
    isolation: IsolationLevel,
) -> AppResult<Vec<LogEntry>> {
    app.reset_session_state();
    let db = app.make_store(isolation);
    let mut conn = db.connect();
    match scenario {
        ShopScenario::Voucher => {
            conn.set_api("add_to_cart", 0);
            observed_request(&mut conn, |c| app.add_to_cart(c, 1, PEN, 1))?;
            conn.set_api("checkout", 0);
            observed_request(&mut conn, |c| {
                app.checkout(c, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            })?;
        }
        ShopScenario::Inventory => {
            conn.set_api("add_to_cart", 0);
            observed_request(&mut conn, |c| app.add_to_cart(c, 1, LAPTOP, INVENTORY_QTY))?;
            conn.set_api("checkout", 0);
            observed_request(&mut conn, |c| app.checkout(c, 1, &CheckoutRequest::plain()))?;
        }
        ShopScenario::Cart => {
            conn.set_api("add_to_cart", 0);
            observed_request(&mut conn, |c| app.add_to_cart(c, 1, PEN, 1))?;
            conn.set_api("checkout", 0);
            observed_request(&mut conn, |c| app.checkout(c, 1, &CheckoutRequest::plain()))?;
        }
    }
    drop(conn);
    Ok(db.log_entries())
}

/// The twelve corpus applications' surfaces. A scenario appears only when
/// the app supports the invariant's feature — matching the dynamic
/// harness, which reports gated cells (no findings) for the rest.
pub fn corpus_surfaces() -> Vec<AppSurface> {
    all_apps()
        .into_iter()
        .map(|app| {
            let app: Arc<dyn ShopApp + Send + Sync> = Arc::from(app);
            let mut scenarios = Vec::new();
            for (scenario, name, support) in [
                (ShopScenario::Voucher, "voucher", app.voucher_support()),
                (
                    ShopScenario::Inventory,
                    "inventory",
                    app.inventory_support(),
                ),
                (ShopScenario::Cart, "cart", app.cart_support()),
            ] {
                if support != FeatureStatus::Supported {
                    continue;
                }
                let store_app = Arc::clone(&app);
                let app = Arc::clone(&app);
                scenarios.push(Scenario::new(
                    name,
                    &["add_to_cart", "checkout"],
                    move |iso| {
                        store_app.reset_session_state();
                        store_app.make_store(iso)
                    },
                    move |iso| record_shop(&*app, scenario, iso),
                ));
            }
            AppSurface {
                app: app.name().to_string(),
                session_locked: app.session_locked(),
                schema: app.schema(),
                scenarios,
            }
        })
        .collect()
}

/// The paper's didactic applications: the three Figure-1 bank variants,
/// the Figure-3 payroll app, and the Figure-9 mini-shop.
pub fn didactic_surfaces() -> Vec<AppSurface> {
    let mut surfaces = Vec::new();

    for (name, make) in [
        ("bank-figure1a", Bank::figure_1a as fn() -> Bank),
        ("bank-figure1b", Bank::figure_1b as fn() -> Bank),
        ("bank-fixed", Bank::fixed as fn() -> Bank),
    ] {
        surfaces.push(AppSurface {
            app: name.to_string(),
            session_locked: false,
            schema: didactic::banking_schema(),
            scenarios: vec![Scenario::new(
                "withdraw",
                &["withdraw"],
                move |iso| make().make_bank(iso, 100),
                move |iso| {
                    let bank = make();
                    let db = bank.make_bank(iso, 100);
                    let mut conn = db.connect();
                    conn.set_api("withdraw", 0);
                    observed_request(&mut conn, |c| bank.withdraw(c, 1, 70))?;
                    drop(conn);
                    Ok(db.log_entries())
                },
            )],
        });
    }

    surfaces.push(AppSurface {
        app: "payroll".to_string(),
        session_locked: false,
        schema: didactic::payroll_schema(),
        scenarios: vec![Scenario::new(
            "payroll",
            &["add_employee", "raise_salary"],
            didactic::make_payroll,
            |iso| {
                let db = didactic::make_payroll(iso);
                let mut conn = db.connect();
                conn.set_api("add_employee", 0);
                observed_request(&mut conn, |c| {
                    didactic::add_employee(c, "John", "Doe", 50000)
                })?;
                conn.set_api("raise_salary", 0);
                observed_request(&mut conn, |c| didactic::raise_salary(c, 1000))?;
                drop(conn);
                Ok(db.log_entries())
            },
        )],
    });

    surfaces.push(AppSurface {
        app: "minishop".to_string(),
        session_locked: false,
        schema: didactic::minishop_schema(),
        scenarios: vec![Scenario::new(
            "cart",
            &["add_to_cart", "checkout"],
            didactic::make_minishop,
            |iso| {
                let db = didactic::make_minishop(iso);
                let mut conn = db.connect();
                conn.set_api("add_to_cart", 0);
                observed_request(&mut conn, |c| didactic::minishop_add_to_cart(c, 14, 1, 2))?;
                conn.set_api("checkout", 0);
                observed_request(&mut conn, |c| didactic::minishop_checkout(c, 14))?;
                drop(conn);
                Ok(db.log_entries())
            },
        )],
    });

    surfaces
}

/// The Flexcoin exchange's surface (§2 case study): the vulnerable
/// `transfer` endpoint plus the correctly guarded `withdraw`.
pub fn flexcoin_surface() -> AppSurface {
    AppSurface {
        app: "flexcoin".to_string(),
        session_locked: false,
        schema: crate::flexcoin::exchange_schema(),
        scenarios: vec![Scenario::new(
            "exchange",
            &["transfer", "withdraw"],
            |iso| Flexcoin.make_exchange(iso, 100, 10),
            |iso| {
                let db = Flexcoin.make_exchange(iso, 100, 10);
                let mut conn = db.connect();
                conn.set_api("transfer", 0);
                observed_request(&mut conn, |c| Flexcoin.transfer(c, 2, 3, 5))?;
                conn.set_api("withdraw", 0);
                observed_request(&mut conn, |c| Flexcoin.withdraw(c, 3, 5))?;
                drop(conn);
                Ok(db.log_entries())
            },
        )],
    }
}

/// The non-commerce surfaces: a banking-transfer service and a
/// ticketing (seat-reservation) app — fresh ground beyond the paper's
/// corpus, exercising the repair adviser's two regimes (level-based
/// fixes for the scoped-but-lock-free transfer, scope-first fixes for
/// the unscoped reservation).
pub fn booking_surfaces() -> Vec<AppSurface> {
    vec![
        AppSurface {
            app: "bank-transfer".to_string(),
            session_locked: false,
            schema: booking::transfer_schema(),
            scenarios: vec![Scenario::new(
                "transfer",
                &["transfer", "deposit"],
                |iso| booking::make_transfer_bank(iso, 100),
                |iso| {
                    let db = booking::make_transfer_bank(iso, 100);
                    let mut conn = db.connect();
                    conn.set_api("transfer", 0);
                    observed_request(&mut conn, |c| booking::transfer(c, 1, 2, 30))?;
                    conn.set_api("deposit", 0);
                    observed_request(&mut conn, |c| booking::deposit(c, 2, 10))?;
                    drop(conn);
                    Ok(db.log_entries())
                },
            )],
        },
        AppSurface {
            app: "ticketing".to_string(),
            session_locked: false,
            schema: booking::ticketing_schema(),
            scenarios: vec![Scenario::new(
                "reserve",
                &["reserve", "cancel"],
                |iso| booking::make_ticketing(iso, 3),
                |iso| {
                    let db = booking::make_ticketing(iso, 3);
                    let mut conn = db.connect();
                    conn.set_api("reserve", 0);
                    observed_request(&mut conn, |c| booking::reserve(c, 1))?;
                    conn.set_api("cancel", 0);
                    observed_request(&mut conn, |c| booking::cancel(c, 1))?;
                    drop(conn);
                    Ok(db.log_entries())
                },
            )],
        },
    ]
}

/// Every auditable surface: the corpus, the didactic apps, Flexcoin, and
/// the non-commerce booking apps.
pub fn all_surfaces() -> Vec<AppSurface> {
    let mut surfaces = corpus_surfaces();
    surfaces.extend(didactic_surfaces());
    surfaces.push(flexcoin_surface());
    surfaces.extend(booking_surfaces());
    surfaces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_whole_corpus() {
        let surfaces = corpus_surfaces();
        assert_eq!(surfaces.len(), 12);
        // Every supported invariant appears as a scenario; gated features
        // do not.
        for (surface, app) in surfaces.iter().zip(all_apps()) {
            assert_eq!(surface.app, app.name());
            let names: Vec<&str> = surface.scenarios.iter().map(|s| s.name).collect();
            assert_eq!(
                names.contains(&"voucher"),
                app.voucher_support() == FeatureStatus::Supported
            );
            assert_eq!(
                names.contains(&"inventory"),
                app.inventory_support() == FeatureStatus::Supported
            );
            assert_eq!(
                names.contains(&"cart"),
                app.cart_support() == FeatureStatus::Supported
            );
        }
    }

    #[test]
    fn booking_surfaces_cover_fresh_ground() {
        let surfaces = booking_surfaces();
        assert_eq!(surfaces.len(), 2);
        assert_eq!(surfaces[0].app, "bank-transfer");
        assert_eq!(surfaces[1].app, "ticketing");
        // Both ride along in the full registry.
        let all = all_surfaces();
        for name in ["bank-transfer", "ticketing"] {
            assert!(all.iter().any(|s| s.app == name), "{name} missing");
        }
    }

    #[test]
    fn recordings_are_deterministic() {
        for surface in all_surfaces() {
            for scenario in &surface.scenarios {
                let a = scenario.record(IsolationLevel::ReadCommitted).unwrap();
                let b = scenario.record(IsolationLevel::ReadCommitted).unwrap();
                assert!(!a.is_empty(), "{}/{}", surface.app, scenario.name);
                let strip = |log: &[LogEntry]| {
                    log.iter()
                        .map(|e| (e.session, e.api.clone(), e.sql.clone()))
                        .collect::<Vec<_>>()
                };
                assert_eq!(strip(&a), strip(&b), "{}/{}", surface.app, scenario.name);
            }
        }
    }

    #[test]
    fn stores_are_fresh_and_identically_seeded() {
        for surface in all_surfaces() {
            for scenario in &surface.scenarios {
                let a = scenario.make_store(IsolationLevel::ReadCommitted);
                let b = scenario.make_store(IsolationLevel::ReadCommitted);
                assert!(
                    !Arc::ptr_eq(&a, &b),
                    "{}/{}: make_store must not share state",
                    surface.app,
                    scenario.name
                );
                for table in surface.schema.tables() {
                    assert_eq!(
                        a.table_rows(&table.name).unwrap(),
                        b.table_rows(&table.name).unwrap(),
                        "{}/{}: table {} seeded differently",
                        surface.app,
                        scenario.name,
                        table.name
                    );
                }
            }
        }
    }

    #[test]
    fn scenarios_record_at_every_level() {
        for level in IsolationLevel::ALL {
            for surface in all_surfaces() {
                for scenario in &surface.scenarios {
                    scenario.record(level).unwrap_or_else(|e| {
                        panic!("{}/{} at {level:?}: {e}", surface.app, scenario.name)
                    });
                }
            }
        }
    }
}
