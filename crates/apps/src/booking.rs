//! Non-commerce applications beyond the paper's corpus: a banking
//! transfer service and a ticketing (seat-reservation) app.
//!
//! Both exist to give the detectors and the repair adviser scenarios the
//! eCommerce corpus does not exercise (ROADMAP "fresh ground"):
//!
//! * [`transfer`] is **transaction-scoped but lock-free** — its
//!   read-check-write races are purely *level-based*, so the adviser's
//!   cheapest fixes (`SELECT ... FOR UPDATE` promotion, minimal isolation
//!   promotion) apply directly, no re-scoping needed.
//! * [`reserve`] is **unscoped** — the classic double-booking anomaly is
//!   *scope-based*, so no isolation level removes it and the adviser must
//!   reach for transaction scoping first (paper §4.2.7).

use std::sync::Arc;

use acidrain_db::{Database, IsolationLevel, Value};
use acidrain_sql::schema::{ColumnDef, ColumnType, Schema, TableSchema};

use crate::framework::{AppError, AppResult, SqlConn};

// ---------------------------------------------------------------------------
// Banking transfer: scoped endpoints, plain reads.

/// Schema for the transfer bank: one `accounts` table keyed by `id`.
pub fn transfer_schema() -> Schema {
    Schema::new().with_table(TableSchema::new(
        "accounts",
        vec![
            ColumnDef::new("id", ColumnType::Int).unique(),
            ColumnDef::new("balance", ColumnType::Int),
        ],
    ))
}

/// Fresh transfer bank with two accounts holding `opening` each.
pub fn make_transfer_bank(isolation: IsolationLevel, opening: i64) -> Arc<Database> {
    let db = Database::new(transfer_schema(), isolation);
    db.seed(
        "accounts",
        vec![
            vec![Value::Int(1), Value::Int(opening)],
            vec![Value::Int(2), Value::Int(opening)],
        ],
    )
    .expect("seed accounts");
    db
}

/// Move `amount` from `from` to `to` if the balance covers it.
///
/// The endpoint is correctly scoped (one `BEGIN`/`COMMIT` around the
/// read-check-write) but reads the balance with a plain `SELECT`, so two
/// concurrent transfers from the same account can both pass the check at
/// weak isolation — a level-based lost update.
pub fn transfer(conn: &mut dyn SqlConn, from: i64, to: i64, amount: i64) -> AppResult<()> {
    conn.exec("BEGIN")?;
    let balance = conn
        .exec(&format!("SELECT balance FROM accounts WHERE id = {from}"))?
        .scalar_i64()
        .unwrap_or(0);
    if balance < amount {
        conn.exec("ROLLBACK")?;
        return Err(AppError::Rejected("insufficient funds".into()));
    }
    conn.exec(&format!(
        "UPDATE accounts SET balance = {} WHERE id = {from}",
        balance - amount
    ))?;
    conn.exec(&format!(
        "UPDATE accounts SET balance = balance + {amount} WHERE id = {to}"
    ))?;
    conn.exec("COMMIT")?;
    Ok(())
}

/// Credit `amount` to `account` — a blind, commuting write, scoped like
/// [`transfer`].
pub fn deposit(conn: &mut dyn SqlConn, account: i64, amount: i64) -> AppResult<()> {
    conn.exec("BEGIN")?;
    conn.exec(&format!(
        "UPDATE accounts SET balance = balance + {amount} WHERE id = {account}"
    ))?;
    conn.exec("COMMIT")?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Ticketing: unscoped seat reservation.

/// Schema for the ticketing app: a `seats` table with a `taken` flag and
/// a `bookings` ledger.
pub fn ticketing_schema() -> Schema {
    Schema::new()
        .with_table(TableSchema::new(
            "seats",
            vec![
                ColumnDef::new("seat", ColumnType::Int).unique(),
                ColumnDef::new("taken", ColumnType::Int),
            ],
        ))
        .with_table(TableSchema::new(
            "bookings",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("seat", ColumnType::Int),
            ],
        ))
}

/// Fresh ticketing store with `seats` free seats.
pub fn make_ticketing(isolation: IsolationLevel, seats: i64) -> Arc<Database> {
    let db = Database::new(ticketing_schema(), isolation);
    db.seed(
        "seats",
        (1..=seats)
            .map(|s| vec![Value::Int(s), Value::Int(0)])
            .collect(),
    )
    .expect("seed seats");
    db
}

/// Reserve `seat` if it is free.
///
/// No transaction wraps the check-mark-record sequence, so two concurrent
/// reservations of the same seat can both observe it free — the
/// double-booking anomaly is scope-based and survives every isolation
/// level until the endpoint is re-scoped.
pub fn reserve(conn: &mut dyn SqlConn, seat: i64) -> AppResult<i64> {
    let taken = conn
        .exec(&format!("SELECT taken FROM seats WHERE seat = {seat}"))?
        .scalar_i64()
        .unwrap_or(1);
    if taken != 0 {
        return Err(AppError::Rejected("seat already taken".into()));
    }
    conn.exec(&format!("UPDATE seats SET taken = 1 WHERE seat = {seat}"))?;
    let booking = conn
        .exec(&format!("INSERT INTO bookings (seat) VALUES ({seat})"))?
        .last_insert_id()
        .expect("booking id");
    Ok(booking)
}

/// Release `seat` and drop its booking rows.
pub fn cancel(conn: &mut dyn SqlConn, seat: i64) -> AppResult<()> {
    conn.exec(&format!("UPDATE seats SET taken = 0 WHERE seat = {seat}"))?;
    conn.exec(&format!("DELETE FROM bookings WHERE seat = {seat}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_serially_correct() {
        let db = make_transfer_bank(IsolationLevel::ReadCommitted, 100);
        let mut conn = db.connect();
        transfer(&mut conn, 1, 2, 30).unwrap();
        deposit(&mut conn, 1, 5).unwrap();
        let rows = db.table_rows("accounts").unwrap();
        assert_eq!(rows[0][1], Value::Int(75));
        assert_eq!(rows[1][1], Value::Int(130));
        let err = transfer(&mut conn, 1, 2, 999).unwrap_err();
        assert!(matches!(err, AppError::Rejected(_)));
        // The refused transfer rolled back: balances are untouched.
        assert_eq!(db.table_rows("accounts").unwrap()[0][1], Value::Int(75));
    }

    #[test]
    fn reserve_and_cancel_serially_correct() {
        let db = make_ticketing(IsolationLevel::ReadCommitted, 3);
        let mut conn = db.connect();
        let booking = reserve(&mut conn, 2).unwrap();
        assert_eq!(booking, 1);
        let err = reserve(&mut conn, 2).unwrap_err();
        assert!(matches!(err, AppError::Rejected(_)));
        cancel(&mut conn, 2).unwrap();
        assert!(db.table_rows("bookings").unwrap().is_empty());
        reserve(&mut conn, 2).unwrap();
        assert_eq!(db.table_rows("bookings").unwrap().len(), 1);
    }
}
