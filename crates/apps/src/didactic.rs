//! The paper's didactic applications: the Figure-1 banking `withdraw`,
//! the Figure-3 payroll functions, and the Figure-9 simplified shop.

use std::sync::Arc;

use acidrain_db::{Database, IsolationLevel, Value};
use acidrain_sql::schema::{ColumnDef, ColumnType, Schema, TableSchema};

use crate::framework::{AppError, AppResult, SqlConn};

// ---------------------------------------------------------------------------
// Figure 1: the vulnerable withdraw function.

/// Schema for the Figure-1 bank: one `accounts` table.
pub fn banking_schema() -> Schema {
    Schema::new().with_table(TableSchema::new(
        "accounts",
        vec![
            ColumnDef::new("id", ColumnType::Int).auto_increment(),
            ColumnDef::new("balance", ColumnType::Int),
        ],
    ))
}

/// A bank whose `withdraw` endpoint matches Figure 1.
pub struct Bank {
    /// Figure 1a (false) vs Figure 1b (true): whether the read-check-write
    /// is wrapped in a transaction.
    pub use_transaction: bool,
    /// The fix the paper names: `SELECT ... FOR UPDATE` on the balance.
    pub use_select_for_update: bool,
}

impl Bank {
    /// The unscoped original: no transaction, no locking.
    pub fn figure_1a() -> Self {
        Bank {
            use_transaction: false,
            use_select_for_update: false,
        }
    }

    /// The transaction-wrapped variant (still vulnerable at weak levels).
    pub fn figure_1b() -> Self {
        Bank {
            use_transaction: true,
            use_select_for_update: false,
        }
    }

    /// Transaction plus `SELECT ... FOR UPDATE`: the paper's fix.
    pub fn fixed() -> Self {
        Bank {
            use_transaction: true,
            use_select_for_update: true,
        }
    }

    /// Fresh bank with one account holding `opening_balance`.
    pub fn make_bank(&self, isolation: IsolationLevel, opening_balance: i64) -> Arc<Database> {
        let db = Database::new(banking_schema(), isolation);
        db.seed(
            "accounts",
            vec![vec![Value::Null, Value::Int(opening_balance)]],
        )
        .expect("seed account");
        db
    }

    /// `withdraw(amt, user_id)` from Figure 1.
    pub fn withdraw(&self, conn: &mut dyn SqlConn, user: i64, amount: i64) -> AppResult<()> {
        if self.use_transaction {
            conn.exec("BEGIN")?;
        }
        let lock_suffix = if self.use_select_for_update {
            " FOR UPDATE"
        } else {
            ""
        };
        let balance = conn
            .exec(&format!(
                "SELECT balance FROM accounts WHERE id = {user}{lock_suffix}"
            ))?
            .scalar_i64()
            .unwrap_or(0);
        if balance < amount {
            if self.use_transaction {
                conn.exec("ROLLBACK")?;
            }
            return Err(AppError::Rejected("insufficient funds".into()));
        }
        conn.exec(&format!(
            "UPDATE accounts SET balance = {} WHERE id = {user}",
            balance - amount
        ))?;
        if self.use_transaction {
            conn.exec("COMMIT")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 3: the payroll application.

/// Schema for the Figure-3 payroll app: `employees` plus a salary-total ledger.
pub fn payroll_schema() -> Schema {
    Schema::new()
        .with_table(TableSchema::new(
            "employees",
            vec![
                ColumnDef::new("first_name", ColumnType::Str),
                ColumnDef::new("last_name", ColumnType::Str),
                ColumnDef::new("salary", ColumnType::Int),
            ],
        ))
        .with_table(TableSchema::new(
            "salary",
            vec![ColumnDef::new("total", ColumnType::Int)],
        ))
}

/// Fresh payroll database with the two seeded employees.
pub fn make_payroll(isolation: IsolationLevel) -> Arc<Database> {
    let db = Database::new(payroll_schema(), isolation);
    db.seed(
        "employees",
        vec![
            vec!["Ada".into(), "Lovelace".into(), Value::Int(50000)],
            vec!["Grace".into(), "Hopper".into(), Value::Int(50000)],
        ],
    )
    .expect("seed employees");
    db.seed("salary", vec![vec![Value::Int(100000)]])
        .expect("seed salary");
    db
}

/// Figure 3a lines 1–7: add an employee if the name is unique.
pub fn add_employee(
    conn: &mut dyn SqlConn,
    first: &str,
    last: &str,
    salary: i64,
) -> AppResult<bool> {
    conn.exec("BEGIN TRANSACTION")?;
    let count = conn
        .exec(&format!(
            "SELECT COUNT(*) FROM employees WHERE first_name='{first}' AND last_name='{last}'"
        ))?
        .scalar_i64()
        .unwrap_or(0);
    let mut added = false;
    if count == 0 {
        conn.exec(&format!(
            "INSERT INTO employees (first_name, last_name, salary) VALUES \
             ('{first}', '{last}', {salary})"
        ))?;
        added = true;
    }
    conn.exec("COMMIT")?;
    Ok(added)
}

/// Figure 3a lines 8–13: raise all salaries and record the new total cost.
pub fn raise_salary(conn: &mut dyn SqlConn, amount: i64) -> AppResult<()> {
    conn.exec(&format!("UPDATE employees SET salary=salary+{amount}"))?;
    conn.exec("BEGIN TRANSACTION")?;
    let count = conn
        .exec("SELECT COUNT(*) FROM employees")?
        .scalar_i64()
        .unwrap_or(0);
    conn.exec(&format!("UPDATE salary SET total=total+{}", count * amount))?;
    conn.exec("COMMIT")?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Figure 9: the simplified shop whose abstract history the paper draws.

/// Schema for the Figure-9 simplified shop.
pub fn minishop_schema() -> Schema {
    Schema::new()
        .with_table(TableSchema::new(
            "cart_items",
            vec![
                ColumnDef::new("cart_id", ColumnType::Int),
                ColumnDef::new("item_id", ColumnType::Int),
                ColumnDef::new("amt", ColumnType::Int),
            ],
        ))
        .with_table(TableSchema::new(
            "stock",
            vec![
                ColumnDef::new("item_id", ColumnType::Int).unique(),
                ColumnDef::new("count", ColumnType::Int),
                ColumnDef::new("price", ColumnType::Int),
            ],
        ))
        .with_table(TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("total", ColumnType::Int),
            ],
        ))
        .with_table(TableSchema::new(
            "order_items",
            vec![
                ColumnDef::new("order_id", ColumnType::Int),
                ColumnDef::new("item_id", ColumnType::Int),
                ColumnDef::new("amt", ColumnType::Int),
            ],
        ))
}

/// Fresh minishop with one seeded item (10 on hand at price 5).
pub fn make_minishop(isolation: IsolationLevel) -> Arc<Database> {
    let db = Database::new(minishop_schema(), isolation);
    db.seed(
        "stock",
        vec![vec![Value::Int(1), Value::Int(10), Value::Int(5)]],
    )
    .expect("seed stock");
    db
}

/// Figure 9's `add_to_cart`: read cart, read stock, write cart.
pub fn minishop_add_to_cart(
    conn: &mut dyn SqlConn,
    cart: i64,
    item: i64,
    amt: i64,
) -> AppResult<()> {
    let existing = conn
        .exec(&format!(
            "SELECT amt FROM cart_items WHERE cart_id={cart} AND item_id={item}"
        ))?
        .scalar_i64()
        .unwrap_or(0);
    let available = conn
        .exec(&format!("SELECT count FROM stock WHERE item_id={item}"))?
        .scalar_i64()
        .unwrap_or(0);
    if existing + amt > available {
        return Err(AppError::Rejected("not enough stock".into()));
    }
    if existing > 0 {
        conn.exec(&format!(
            "UPDATE cart_items SET amt={} WHERE cart_id={cart} AND item_id={item}",
            existing + amt
        ))?;
    } else {
        conn.exec(&format!(
            "INSERT INTO cart_items (cart_id, item_id, amt) VALUES ({cart}, {item}, {amt})"
        ))?;
    }
    Ok(())
}

/// Figure 9's `checkout`: read stock, read cart, write order, read cart
/// again, write order_items, write stock — the node sequence 4..9 in the
/// figure.
pub fn minishop_checkout(conn: &mut dyn SqlConn, cart: i64) -> AppResult<i64> {
    let _guard = conn
        .exec(&format!(
            "SELECT SUM(ci.amt) FROM cart_items AS ci INNER JOIN stock AS s \
             ON s.item_id = ci.item_id WHERE ci.cart_id={cart} AND s.count < ci.amt"
        ))?
        .scalar_i64();
    let total = conn
        .exec(&format!(
            "SELECT SUM(ci.amt * s.price) FROM cart_items AS ci INNER JOIN stock AS s \
             ON s.item_id = ci.item_id WHERE ci.cart_id={cart}"
        ))?
        .scalar_i64()
        .unwrap_or(0);
    if total == 0 {
        return Err(AppError::Rejected("empty cart".into()));
    }
    let order = conn
        .exec(&format!("INSERT INTO orders (total) VALUES ({total})"))?
        .last_insert_id()
        .expect("order id");
    let rs = conn.exec(&format!(
        "SELECT item_id, amt FROM cart_items WHERE cart_id={cart}"
    ))?;
    let lines: Vec<(i64, i64)> = rs
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap_or(0), r[1].as_i64().unwrap_or(0)))
        .collect();
    for (item, amt) in &lines {
        conn.exec(&format!(
            "INSERT INTO order_items (order_id, item_id, amt) VALUES ({order}, {item}, {amt})"
        ))?;
        conn.exec(&format!(
            "UPDATE stock SET count = count - {amt} WHERE item_id = {item}"
        ))?;
    }
    conn.exec(&format!("DELETE FROM cart_items WHERE cart_id = {cart}"))?;
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_withdraw_serially_correct() {
        for bank in [Bank::figure_1a(), Bank::figure_1b(), Bank::fixed()] {
            let db = bank.make_bank(IsolationLevel::ReadCommitted, 100);
            let mut conn = db.connect();
            bank.withdraw(&mut conn, 1, 99).unwrap();
            let err = bank.withdraw(&mut conn, 1, 99).unwrap_err();
            assert!(matches!(err, AppError::Rejected(_)));
            assert_eq!(db.table_rows("accounts").unwrap()[0][1], Value::Int(1));
        }
    }

    #[test]
    fn payroll_matches_figure3_log() {
        let db = make_payroll(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        conn.set_api("add_employee", 0);
        assert!(add_employee(&mut conn, "John", "Doe", 50000).unwrap());
        conn.set_api("raise_salary", 0);
        raise_salary(&mut conn, 1000).unwrap();
        let log: Vec<String> = db.log_entries().iter().map(|e| e.sql.clone()).collect();
        // The Figure 3b sequence.
        assert_eq!(log[0], "BEGIN TRANSACTION");
        assert!(log[1].starts_with("SELECT COUNT(*) FROM employees WHERE"));
        assert!(log[2].starts_with("INSERT INTO employees"));
        assert_eq!(log[3], "COMMIT");
        assert_eq!(log[4], "UPDATE employees SET salary=salary+1000");
        assert_eq!(log[5], "BEGIN TRANSACTION");
        assert_eq!(log[6], "SELECT COUNT(*) FROM employees");
        assert_eq!(log[7], "UPDATE salary SET total=total+3000");
        assert_eq!(log[8], "COMMIT");
        // Duplicate adds are refused.
        conn.set_api("add_employee", 1);
        assert!(!add_employee(&mut conn, "John", "Doe", 50000).unwrap());
    }

    #[test]
    fn minishop_serial_flow() {
        let db = make_minishop(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        minishop_add_to_cart(&mut conn, 14, 1, 2).unwrap();
        minishop_add_to_cart(&mut conn, 14, 1, 1).unwrap();
        let order = minishop_checkout(&mut conn, 14).unwrap();
        assert_eq!(order, 1);
        let orders = db.table_rows("orders").unwrap();
        assert_eq!(orders[0][1], Value::Int(15), "3 units at price 5");
        assert_eq!(db.table_rows("stock").unwrap()[0][1], Value::Int(7));
        // Oversized add is refused.
        let err = minishop_add_to_cart(&mut conn, 14, 1, 99).unwrap_err();
        assert!(matches!(err, AppError::Rejected(_)));
    }
}
