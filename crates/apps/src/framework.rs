//! Common scaffolding for the simulated application corpus: the connection
//! abstraction endpoints run against, the shared shop schema and fixtures,
//! error types, and the `ShopApp` trait every simulated application
//! implements.

use std::sync::Arc;

use acidrain_db::{Connection, Database, DbError, IsolationLevel, Obs, ResultSet, Value};
use acidrain_sql::schema::{ColumnDef, ColumnType, Schema, TableSchema};

/// The connection surface application endpoints are written against.
///
/// Production code runs against a plain [`Connection`]; the harness's
/// deterministic scheduler substitutes a gated connection that pauses
/// before every statement so interleavings can be scripted.
pub trait SqlConn {
    /// Execute one SQL statement and return its result set.
    fn exec(&mut self, sql: &str) -> Result<ResultSet, DbError>;

    /// Tag subsequent statements with an API-call identity for the query
    /// log (drivers call this; endpoints themselves never do).
    fn set_api(&mut self, name: &str, invocation: u64);

    /// The database session id (used as the cart identity by drivers).
    fn session(&self) -> u64;

    /// The observability handle of the underlying database. Wrappers
    /// delegate to their inner connection; the default (a fresh, disabled
    /// registry) keeps bare test doubles trivially valid.
    fn obs(&self) -> Obs {
        Obs::default()
    }
}

impl SqlConn for Connection {
    fn exec(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        self.execute(sql)
    }

    fn set_api(&mut self, name: &str, invocation: u64) {
        Connection::set_api(self, name, invocation);
    }

    fn session(&self) -> u64 {
        self.session_id()
    }

    fn obs(&self) -> Obs {
        Connection::obs(self).clone()
    }
}

/// Run one application request against `conn`, recording its wall-clock
/// latency into the registry's task histogram — the same series the stress
/// watchdog and the bench report read, so "request latency" means one
/// thing everywhere. Free (two relaxed loads) while metrics are off.
pub fn observed_request<C: SqlConn + ?Sized, T>(conn: &mut C, f: impl FnOnce(&mut C) -> T) -> T {
    let obs = conn.obs();
    let timer = obs.timer();
    let out = f(conn);
    if let Some(dur) = timer.elapsed() {
        obs.task_finished(conn.session(), dur);
    }
    out
}

/// Application-level outcome of an endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum AppError {
    /// Underlying database error (deadlock, serialization failure, ...).
    Db(DbError),
    /// The request was rejected by business logic (insufficient stock,
    /// voucher exhausted, empty cart, ...). Not an anomaly — a correctly
    /// refused request.
    Rejected(String),
    /// The application ships with this functionality broken or absent.
    Unsupported(&'static str),
}

impl From<DbError> for AppError {
    fn from(e: DbError) -> Self {
        AppError::Db(e)
    }
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::Db(e) => write!(f, "database error: {e}"),
            AppError::Rejected(msg) => write!(f, "rejected: {msg}"),
            AppError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for AppError {}

/// Shorthand result type every endpoint returns.
pub type AppResult<T> = Result<T, AppError>;

/// Availability of an optional feature in an application (the paper's NF /
/// BF / NDB cells in Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureStatus {
    /// The application implements the feature against the database.
    Supported,
    /// The application has no such concept (paper "NF").
    NoFeature,
    /// The functionality ships broken (paper "BF").
    Broken,
    /// Backed by session state rather than the database (paper "NDB").
    NotDbBacked,
}

/// Implementation language, as in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    /// Plain PHP (osCommerce lineage).
    Php,
    /// Ruby on Rails (Spree lineage).
    Ruby,
    /// Python / Django (Oscar, Saleor lineage).
    Python,
    /// Java / Spring (Broadleaf, Shopizer lineage).
    Java,
}

impl std::fmt::Display for Language {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Language::Php => "PHP",
            Language::Ruby => "Ruby (Rails)",
            Language::Python => "Python (Django)",
            Language::Java => "Java (Spring)",
        })
    }
}

/// Parameters of a checkout request.
#[derive(Debug, Clone, Default)]
pub struct CheckoutRequest {
    /// Voucher code to redeem, if any.
    pub voucher_code: Option<String>,
    /// Order total supplied by the client (the Broadleaf/Shopizer
    /// request-header pattern, paper §4.2.5). `None` = computed
    /// server-side.
    pub client_total: Option<i64>,
}

impl CheckoutRequest {
    /// A checkout with no voucher and a server-computed total.
    pub fn plain() -> Self {
        CheckoutRequest::default()
    }

    /// A checkout redeeming voucher `code` (server-computed total).
    pub fn with_voucher(code: &str) -> Self {
        CheckoutRequest {
            voucher_code: Some(code.to_string()),
            client_total: None,
        }
    }
}

/// A simulated eCommerce application: its metadata and its HTTP-equivalent
/// endpoints, written as sequences of SQL statements with the transaction
/// scoping, locking, and validation idioms of the real codebase (paper
/// Table 5 and §4.2.6).
pub trait ShopApp: Sync {
    /// Application name as it appears in the paper's tables.
    fn name(&self) -> &'static str;
    /// Implementation language of the original codebase (Table 1).
    fn language(&self) -> Language;

    /// Whether vouchers exist and are database-backed (Table 5).
    fn voucher_support(&self) -> FeatureStatus {
        FeatureStatus::Supported
    }
    /// Whether inventory tracking exists and works (Table 5).
    fn inventory_support(&self) -> FeatureStatus {
        FeatureStatus::Supported
    }
    /// Whether carts are database-backed (Table 5).
    fn cart_support(&self) -> FeatureStatus {
        FeatureStatus::Supported
    }

    /// Whether the deployment serializes same-session requests (PHP
    /// session locking, paper §4.2.6).
    fn session_locked(&self) -> bool {
        false
    }

    /// How this application tracks stock, for the inventory invariant.
    fn stock_model(&self) -> StockModel {
        StockModel::Column
    }

    /// Whether the order total is taken from request state rather than
    /// derived from database reads (the Broadleaf/Shopizer pattern the
    /// paper marks `yes*` in Table 5, §4.2.5).
    fn total_from_request(&self) -> bool {
        false
    }

    /// The store schema (the shared corpus schema unless overridden).
    fn schema(&self) -> Schema {
        shop_schema()
    }

    /// Create and populate a fresh store for this application.
    fn make_store(&self, isolation: IsolationLevel) -> Arc<Database> {
        let db = Database::new(self.schema(), isolation);
        seed_store(&db);
        db
    }

    /// Discard any application-held session state (e.g. Saleor's
    /// session-backed carts). Harness drivers call this when they pair the
    /// application with a fresh store.
    fn reset_session_state(&self) {}

    /// `PUT /api/cart/add` — place `qty` of `product` into cart `cart`.
    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()>;

    /// `PUT /api/checkout` — place an order for cart `cart`. Returns the
    /// order id.
    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64>;
}

/// The shared store schema. Product and voucher lookups by `id` are key
/// accesses; lookups by `name`/`code`/foreign keys are predicate accesses —
/// which is what separates Lost Update shapes from Phantom shapes in the
/// Table 5 "AP" column.
pub fn shop_schema() -> Schema {
    Schema::new()
        .with_table(TableSchema::new(
            "products",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("price", ColumnType::Int),
                ColumnDef::new("stock", ColumnType::Int),
            ],
        ))
        .with_table(TableSchema::new(
            "cart_items",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("cart_id", ColumnType::Int),
                ColumnDef::new("product_id", ColumnType::Int),
                ColumnDef::new("qty", ColumnType::Int),
            ],
        ))
        .with_table(TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("cart_id", ColumnType::Int),
                ColumnDef::new("total", ColumnType::Int),
                ColumnDef::new("status", ColumnType::Str),
            ],
        ))
        .with_table(TableSchema::new(
            "order_items",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("order_id", ColumnType::Int),
                ColumnDef::new("product_id", ColumnType::Int),
                ColumnDef::new("qty", ColumnType::Int),
                ColumnDef::new("price", ColumnType::Int),
            ],
        ))
        .with_table(TableSchema::new(
            "vouchers",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("code", ColumnType::Str),
                ColumnDef::new("value", ColumnType::Int),
                ColumnDef::new("usage_limit", ColumnType::Int),
                ColumnDef::new("used", ColumnType::Int),
            ],
        ))
        .with_table(TableSchema::new(
            "voucher_applications",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("voucher_id", ColumnType::Int),
                ColumnDef::new("order_id", ColumnType::Int),
            ],
        ))
        .with_table(TableSchema::new(
            "app_locks",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("owner", ColumnType::Int),
            ],
        ))
        // Shoppe tracks stock as a ledger of adjustments (sum = on hand)
        // rather than a counter column.
        .with_table(TableSchema::new(
            "stock_adjustments",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("product_id", ColumnType::Int),
                ColumnDef::new("amount", ColumnType::Int),
            ],
        ))
}

/// How an application tracks product stock, for invariant checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StockModel {
    /// `products.stock` holds the count on hand.
    Column,
    /// On-hand stock is `SUM(stock_adjustments.amount)` per product.
    Adjustments,
}

/// Pen used in the cart attacks; laptop is the item "stolen".
pub const PEN: i64 = 1;
/// The expensive item the cart attacks obtain at the pen's price.
pub const LAPTOP: i64 = 2;
/// Seeded unit price of the pen.
pub const PEN_PRICE: i64 = 2;
/// Seeded unit price of the laptop.
pub const LAPTOP_PRICE: i64 = 900;
/// Seeded on-hand stock of the pen.
pub const PEN_STOCK: i64 = 10;
/// Seeded on-hand stock of the laptop.
pub const LAPTOP_STOCK: i64 = 5;
/// The single-use gift voucher the voucher attacks overspend.
pub const VOUCHER_ID: i64 = 1;
/// Redemption code of the seeded gift voucher.
pub const VOUCHER_CODE: &str = "GIFT";
/// Seeded usage limit of the gift voucher (single-use).
pub const VOUCHER_LIMIT: i64 = 1;

/// Install the sample store every application ships with (paper §4.2.1:
/// "they all shipped with a sample store ... that exercised core
/// application functionality").
pub fn seed_store(db: &Database) {
    db.seed(
        "products",
        vec![
            vec![
                Value::Int(PEN),
                Value::Str("pen".into()),
                Value::Int(PEN_PRICE),
                Value::Int(PEN_STOCK),
            ],
            vec![
                Value::Int(LAPTOP),
                Value::Str("laptop".into()),
                Value::Int(LAPTOP_PRICE),
                Value::Int(LAPTOP_STOCK),
            ],
        ],
    )
    .expect("seed products");
    db.seed(
        "vouchers",
        vec![vec![
            Value::Int(VOUCHER_ID),
            Value::Str(VOUCHER_CODE.into()),
            Value::Int(10),
            Value::Int(VOUCHER_LIMIT),
            Value::Int(0),
        ]],
    )
    .expect("seed vouchers");
    db.seed(
        "app_locks",
        vec![vec![
            Value::Int(1),
            Value::Str("checkout".into()),
            Value::Int(0),
        ]],
    )
    .expect("seed app_locks");
    db.seed(
        "stock_adjustments",
        vec![
            vec![Value::Null, Value::Int(PEN), Value::Int(PEN_STOCK)],
            vec![Value::Null, Value::Int(LAPTOP), Value::Int(LAPTOP_STOCK)],
        ],
    )
    .expect("seed stock_adjustments");
}

// ---------------------------------------------------------------------------
// Shared endpoint building blocks (each app composes these differently).

/// A cart line: (product_id, qty, price).
pub type CartLine = (i64, i64, i64);

/// Read the cart with a products join — one read covering items and
/// prices. Apps that derive both the order total and the order items from
/// this single read are immune to the cart anomaly (paper §4.2.6, "single
/// read of data").
pub fn read_cart(conn: &mut dyn SqlConn, cart: i64) -> AppResult<Vec<CartLine>> {
    let rs = conn.exec(&format!(
        "SELECT ci.product_id, ci.qty, p.price FROM cart_items AS ci INNER JOIN products \
         AS p ON p.id = ci.product_id WHERE ci.cart_id = {cart} ORDER BY ci.id ASC"
    ))?;
    Ok(rs
        .rows
        .iter()
        .map(|r| {
            (
                r[0].as_i64().unwrap_or(0),
                r[1].as_i64().unwrap_or(0),
                r[2].as_i64().unwrap_or(0),
            )
        })
        .collect())
}

/// Sum a cart's total with one aggregate query (a separate read of the
/// cart table).
pub fn read_cart_total(conn: &mut dyn SqlConn, cart: i64) -> AppResult<i64> {
    let rs = conn.exec(&format!(
        "SELECT SUM(ci.qty * p.price) FROM cart_items AS ci INNER JOIN products AS p \
         ON p.id = ci.product_id WHERE ci.cart_id = {cart}"
    ))?;
    Ok(rs.scalar_i64().unwrap_or(0))
}

/// Insert a pending order row for `cart` and return its id.
pub fn insert_order(conn: &mut dyn SqlConn, cart: i64, total: i64) -> AppResult<i64> {
    let rs = conn.exec(&format!(
        "INSERT INTO orders (cart_id, total, status) VALUES ({cart}, {total}, 'pending')"
    ))?;
    rs.last_insert_id()
        .ok_or_else(|| AppError::Db(DbError::Internal("missing order id".into())))
}

/// Finalize an order. Invariants only consider placed orders, so checkouts
/// that fail midway (and real apps' abandoned orders) are not counted as
/// fulfilled.
pub fn mark_order_placed(conn: &mut dyn SqlConn, order: i64) -> AppResult<()> {
    conn.exec(&format!(
        "UPDATE orders SET status = 'placed' WHERE id = {order}"
    ))?;
    Ok(())
}

/// Copy cart lines into `order_items` rows for `order`.
pub fn insert_order_items(conn: &mut dyn SqlConn, order: i64, lines: &[CartLine]) -> AppResult<()> {
    for (product, qty, price) in lines {
        conn.exec(&format!(
            "INSERT INTO order_items (order_id, product_id, qty, price) VALUES \
             ({order}, {product}, {qty}, {price})"
        ))?;
    }
    Ok(())
}

/// Delete every line of `cart` (the post-checkout sweep).
pub fn clear_cart(conn: &mut dyn SqlConn, cart: i64) -> AppResult<()> {
    conn.exec(&format!("DELETE FROM cart_items WHERE cart_id = {cart}"))?;
    Ok(())
}

/// Scalar-query helper.
pub fn query_i64(conn: &mut dyn SqlConn, sql: &str) -> AppResult<i64> {
    Ok(conn.exec(sql)?.scalar_i64().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe;
    impl ShopApp for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn language(&self) -> Language {
            Language::Php
        }
        fn add_to_cart(
            &self,
            conn: &mut dyn SqlConn,
            cart: i64,
            product: i64,
            qty: i64,
        ) -> AppResult<()> {
            conn.exec(&format!(
                "INSERT INTO cart_items (cart_id, product_id, qty) VALUES ({cart}, {product}, {qty})"
            ))?;
            Ok(())
        }
        fn checkout(
            &self,
            conn: &mut dyn SqlConn,
            cart: i64,
            _req: &CheckoutRequest,
        ) -> AppResult<i64> {
            let lines = read_cart(conn, cart)?;
            let total: i64 = lines.iter().map(|(_, q, p)| q * p).sum();
            let order = insert_order(conn, cart, total)?;
            insert_order_items(conn, order, &lines)?;
            clear_cart(conn, cart)?;
            Ok(order)
        }
    }

    #[test]
    fn store_seeding_and_building_blocks() {
        let app = Probe;
        let db = app.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        app.add_to_cart(&mut conn, 1, PEN, 3).unwrap();
        app.add_to_cart(&mut conn, 1, LAPTOP, 1).unwrap();
        assert_eq!(
            read_cart_total(&mut conn, 1).unwrap(),
            3 * PEN_PRICE + LAPTOP_PRICE
        );
        let lines = read_cart(&mut conn, 1).unwrap();
        assert_eq!(lines, vec![(PEN, 3, PEN_PRICE), (LAPTOP, 1, LAPTOP_PRICE)]);
        let order = app
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap();
        assert_eq!(order, 1);
        // Cart cleared, order recorded.
        assert_eq!(read_cart(&mut conn, 1).unwrap().len(), 0);
        assert_eq!(
            query_i64(&mut conn, "SELECT total FROM orders WHERE id = 1").unwrap(),
            3 * PEN_PRICE + LAPTOP_PRICE
        );
        assert_eq!(
            query_i64(
                &mut conn,
                "SELECT COUNT(*) FROM order_items WHERE order_id = 1"
            )
            .unwrap(),
            2
        );
    }

    #[test]
    fn seeded_fixtures_match_constants() {
        let db = Probe.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        assert_eq!(
            query_i64(&mut conn, "SELECT stock FROM products WHERE id = 1").unwrap(),
            PEN_STOCK
        );
        assert_eq!(
            query_i64(&mut conn, "SELECT usage_limit FROM vouchers WHERE id = 1").unwrap(),
            VOUCHER_LIMIT
        );
        assert_eq!(
            query_i64(&mut conn, "SELECT COUNT(*) FROM app_locks").unwrap(),
            1
        );
    }
}
