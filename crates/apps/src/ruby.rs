//! The Ruby on Rails applications: Spree, Ror_ecommerce, Shoppe.
//!
//! Idioms reproduced from the paper: Spree is the corpus's only fully safe
//! application — correct `SELECT ... FOR UPDATE` on stock and multiple
//! validations around voucher use and cart totals (§4.2.6). Ror_ecommerce
//! wraps its stock check in a transaction but only takes the lock when
//! inventory is below a threshold, leaving the common path as a
//! level-based Lost Update; its cart uses the two-read shape. Shoppe has
//! no vouchers, tracks stock as a ledger of adjustments (predicate read +
//! insert: phantom shapes), and uses the two-read cart.

use crate::framework::*;

fn cart_insert(conn: &mut dyn SqlConn, cart: i64, product: i64, qty: i64) -> AppResult<()> {
    conn.exec(&format!(
        "INSERT INTO cart_items (cart_id, product_id, qty) VALUES ({cart}, {product}, {qty})"
    ))?;
    Ok(())
}

/// Spree Commerce — the one application with no vulnerabilities.
pub struct Spree;

impl Spree {
    /// Correct pessimistic locking: lock, check, relative decrement, all
    /// inside one transaction.
    fn decrement_stock(&self, conn: &mut dyn SqlConn, product: i64, qty: i64) -> AppResult<()> {
        conn.exec("BEGIN")?;
        let stock = query_i64(
            conn,
            &format!("SELECT stock FROM products WHERE id = {product} FOR UPDATE"),
        )?;
        if stock < qty {
            conn.exec("ROLLBACK")?;
            return Err(AppError::Rejected(format!(
                "product {product} out of stock"
            )));
        }
        conn.exec(&format!(
            "UPDATE products SET stock = stock - {qty} WHERE id = {product}"
        ))?;
        conn.exec("COMMIT")?;
        Ok(())
    }

    /// Multiple validations: check before, increment relatively, re-check
    /// after; roll back on over-use (§4.2.6 — anomalies between the checks
    /// stay triggerable but every over-use ends in a failed checkout).
    fn redeem_voucher(&self, conn: &mut dyn SqlConn, order: i64) -> AppResult<()> {
        conn.exec("BEGIN")?;
        let used = query_i64(
            conn,
            &format!("SELECT used FROM vouchers WHERE id = {VOUCHER_ID}"),
        )?;
        let limit = query_i64(
            conn,
            &format!("SELECT usage_limit FROM vouchers WHERE id = {VOUCHER_ID}"),
        )?;
        if used >= limit {
            conn.exec("ROLLBACK")?;
            return Err(AppError::Rejected("voucher exhausted".into()));
        }
        conn.exec(&format!(
            "UPDATE vouchers SET used = used + 1 WHERE id = {VOUCHER_ID}"
        ))?;
        // Validate again after marking.
        let after = query_i64(
            conn,
            &format!("SELECT used FROM vouchers WHERE id = {VOUCHER_ID}"),
        )?;
        if after > limit {
            conn.exec("ROLLBACK")?;
            return Err(AppError::Rejected("voucher exhausted (post-check)".into()));
        }
        conn.exec(&format!(
            "INSERT INTO voucher_applications (voucher_id, order_id) VALUES \
             ({VOUCHER_ID}, {order})"
        ))?;
        conn.exec("COMMIT")?;
        Ok(())
    }
}

impl ShopApp for Spree {
    fn name(&self) -> &'static str {
        "Spree"
    }

    fn language(&self) -> Language {
        Language::Ruby
    }

    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        cart_insert(conn, cart, product, qty)
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        let total = read_cart_total(conn, cart)?;
        if total == 0 {
            return Err(AppError::Rejected("empty cart".into()));
        }
        let order = insert_order(conn, cart, total)?;
        // Second read, then recompute the total from it (multiple
        // validations keep the order internally consistent).
        let lines = read_cart(conn, cart)?;
        insert_order_items(conn, order, &lines)?;
        let recomputed: i64 = lines.iter().map(|(_, q, p)| q * p).sum();
        if recomputed != total {
            conn.exec(&format!(
                "UPDATE orders SET total = {recomputed} WHERE id = {order}"
            ))?;
        }
        for (product, qty, _) in &lines {
            self.decrement_stock(conn, *product, *qty)?;
        }
        if req.voucher_code.is_some() {
            self.redeem_voucher(conn, order)?;
        }
        clear_cart(conn, cart)?;
        mark_order_placed(conn, order)?;
        Ok(order)
    }
}

/// Ror_ecommerce: `SELECT FOR UPDATE` only below a low-stock threshold —
/// the guarded path the paper found ("does not guard the stock management
/// when the inventory is above a user-specified threshold").
pub struct RorEcommerce;

/// Below this remaining stock, Ror_ecommerce takes the row lock.
pub const ROR_LOW_STOCK_THRESHOLD: i64 = 3;

impl RorEcommerce {
    fn decrement_stock(&self, conn: &mut dyn SqlConn, product: i64, qty: i64) -> AppResult<()> {
        conn.exec("BEGIN")?;
        let mut stock = query_i64(
            conn,
            &format!("SELECT stock FROM products WHERE id = {product}"),
        )?;
        if stock < ROR_LOW_STOCK_THRESHOLD {
            // Low stock: lock and re-read.
            stock = query_i64(
                conn,
                &format!("SELECT stock FROM products WHERE id = {product} FOR UPDATE"),
            )?;
        }
        if stock < qty {
            conn.exec("ROLLBACK")?;
            return Err(AppError::Rejected(format!(
                "product {product} out of stock"
            )));
        }
        // Blind write of the application-computed value: a level-based
        // Lost Update whenever the threshold path was not taken.
        conn.exec(&format!(
            "UPDATE products SET stock = {} WHERE id = {product}",
            stock - qty
        ))?;
        conn.exec("COMMIT")?;
        Ok(())
    }
}

impl ShopApp for RorEcommerce {
    fn name(&self) -> &'static str {
        "Ror_ecommerce"
    }

    fn language(&self) -> Language {
        Language::Ruby
    }

    fn voucher_support(&self) -> FeatureStatus {
        FeatureStatus::NoFeature
    }

    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        cart_insert(conn, cart, product, qty)
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        if req.voucher_code.is_some() {
            return Err(AppError::Unsupported("Ror_ecommerce has no gift vouchers"));
        }
        // Two-read cart (vulnerable).
        let total = read_cart_total(conn, cart)?;
        if total == 0 {
            return Err(AppError::Rejected("empty cart".into()));
        }
        let order = insert_order(conn, cart, total)?;
        let lines = read_cart(conn, cart)?;
        insert_order_items(conn, order, &lines)?;
        for (product, qty, _) in &lines {
            self.decrement_stock(conn, *product, *qty)?;
        }
        clear_cart(conn, cart)?;
        mark_order_placed(conn, order)?;
        Ok(order)
    }
}

/// Shoppe: stock as a ledger of adjustments; `SUM` the ledger (predicate
/// read), then insert a negative adjustment — both phantoms, no
/// transactions. No voucher concept.
pub struct Shoppe;

impl Shoppe {
    fn decrement_stock(&self, conn: &mut dyn SqlConn, product: i64, qty: i64) -> AppResult<()> {
        let on_hand = query_i64(
            conn,
            &format!("SELECT SUM(amount) FROM stock_adjustments WHERE product_id = {product}"),
        )?;
        if on_hand < qty {
            return Err(AppError::Rejected(format!(
                "product {product} out of stock"
            )));
        }
        conn.exec(&format!(
            "INSERT INTO stock_adjustments (product_id, amount) VALUES ({product}, {})",
            -qty
        ))?;
        Ok(())
    }
}

impl ShopApp for Shoppe {
    fn name(&self) -> &'static str {
        "Shoppe"
    }

    fn language(&self) -> Language {
        Language::Ruby
    }

    fn voucher_support(&self) -> FeatureStatus {
        FeatureStatus::NoFeature
    }

    fn stock_model(&self) -> StockModel {
        StockModel::Adjustments
    }

    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        cart_insert(conn, cart, product, qty)
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        if req.voucher_code.is_some() {
            return Err(AppError::Unsupported("Shoppe has no gift vouchers"));
        }
        let total = read_cart_total(conn, cart)?;
        if total == 0 {
            return Err(AppError::Rejected("empty cart".into()));
        }
        let order = insert_order(conn, cart, total)?;
        let lines = read_cart(conn, cart)?;
        insert_order_items(conn, order, &lines)?;
        for (product, qty, _) in &lines {
            self.decrement_stock(conn, *product, *qty)?;
        }
        clear_cart(conn, cart)?;
        mark_order_placed(conn, order)?;
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acidrain_db::IsolationLevel;

    #[test]
    fn spree_serial_flow_and_voucher_limit() {
        let db = Spree.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        Spree.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
        Spree
            .checkout(&mut conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            .unwrap();
        Spree.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
        let err = Spree
            .checkout(&mut conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            .unwrap_err();
        assert!(matches!(err, AppError::Rejected(_)));
        assert_eq!(
            query_i64(&mut conn, "SELECT used FROM vouchers WHERE id = 1").unwrap(),
            1
        );
    }

    #[test]
    fn spree_stock_locking_rejects_oversell() {
        let db = Spree.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        Spree
            .add_to_cart(&mut conn, 1, LAPTOP, LAPTOP_STOCK + 1)
            .unwrap();
        let err = Spree
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap_err();
        assert!(matches!(err, AppError::Rejected(_)));
        assert_eq!(
            query_i64(
                &mut conn,
                &format!("SELECT stock FROM products WHERE id = {LAPTOP}")
            )
            .unwrap(),
            LAPTOP_STOCK
        );
    }

    #[test]
    fn ror_takes_lock_only_below_threshold() {
        let db = RorEcommerce.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        // Stock 10: no FOR UPDATE in the log.
        RorEcommerce.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
        RorEcommerce
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap();
        assert!(!db
            .log_entries()
            .iter()
            .any(|e| e.sql.contains("FOR UPDATE")));
        // Drain stock to below the threshold; the lock appears.
        conn.execute(&format!(
            "UPDATE products SET stock = {} WHERE id = {PEN}",
            ROR_LOW_STOCK_THRESHOLD - 1
        ))
        .unwrap();
        RorEcommerce.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
        RorEcommerce
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap();
        assert!(db
            .log_entries()
            .iter()
            .any(|e| e.sql.contains("FOR UPDATE")));
    }

    #[test]
    fn ror_and_shoppe_refuse_vouchers() {
        for app in [&RorEcommerce as &dyn ShopApp, &Shoppe] {
            assert_eq!(app.voucher_support(), FeatureStatus::NoFeature);
            let db = app.make_store(IsolationLevel::ReadCommitted);
            let mut conn = db.connect();
            app.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
            let err = app
                .checkout(&mut conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
                .unwrap_err();
            assert!(matches!(err, AppError::Unsupported(_)), "{}", app.name());
        }
    }

    #[test]
    fn shoppe_tracks_stock_via_adjustments() {
        let db = Shoppe.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        Shoppe.add_to_cart(&mut conn, 1, PEN, 4).unwrap();
        Shoppe
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap();
        assert_eq!(
            query_i64(
                &mut conn,
                &format!("SELECT SUM(amount) FROM stock_adjustments WHERE product_id = {PEN}")
            )
            .unwrap(),
            PEN_STOCK - 4
        );
        // The stock column is untouched — Shoppe doesn't use it.
        assert_eq!(
            query_i64(
                &mut conn,
                &format!("SELECT stock FROM products WHERE id = {PEN}")
            )
            .unwrap(),
            PEN_STOCK
        );
        // Oversell refused serially.
        Shoppe.add_to_cart(&mut conn, 1, PEN, PEN_STOCK).unwrap();
        let err = Shoppe
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap_err();
        assert!(matches!(err, AppError::Rejected(_)));
    }
}
