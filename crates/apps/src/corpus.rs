//! Corpus metadata (paper Table 1) and the expected vulnerability matrix
//! (paper Table 5), used as the oracle the reproduction is checked
//! against.

use crate::framework::{Language, ShopApp};
use crate::java::{Broadleaf, Shopizer};
use crate::php::{Magento, OpenCart, PrestaShop, WooCommerce};
use crate::python::{LightningFastShop, Oscar, Saleor};
use crate::ruby::{RorEcommerce, Shoppe, Spree};

/// Descriptive statistics the paper reports per application (Table 1).
/// These are carried through verbatim — they describe the real-world
/// corpus, not anything this reproduction measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Application name as in Table 1.
    pub name: &'static str,
    /// Implementation language/framework.
    pub language: Language,
    /// Web deployments per builtwith.com (None where the paper found no
    /// number).
    pub deployments: Option<u64>,
    /// GitHub stars at the paper's snapshot.
    pub github_stars: u32,
    /// Codebase size at the paper's snapshot.
    pub lines_of_code: u32,
    /// SQL trace size (lines) the paper's pen-test sessions produced.
    pub paper_trace_lines: u32,
}

/// Table 1 verbatim.
pub const TABLE1: [CorpusEntry; 12] = [
    CorpusEntry {
        name: "OpenCart",
        language: Language::Php,
        deployments: Some(298_399),
        github_stars: 3247,
        lines_of_code: 136_544,
        paper_trace_lines: 1699,
    },
    CorpusEntry {
        name: "PrestaShop",
        language: Language::Php,
        deployments: Some(230_501),
        github_stars: 2287,
        lines_of_code: 189_812,
        paper_trace_lines: 1422,
    },
    CorpusEntry {
        name: "Magento",
        language: Language::Php,
        deployments: Some(245_680),
        github_stars: 4198,
        lines_of_code: 1_161_281,
        paper_trace_lines: 801,
    },
    CorpusEntry {
        name: "WooCommerce",
        language: Language::Php,
        deployments: Some(1_979_504),
        github_stars: 3227,
        lines_of_code: 100_098,
        paper_trace_lines: 1006,
    },
    CorpusEntry {
        name: "Spree",
        language: Language::Ruby,
        deployments: Some(45_000),
        github_stars: 8268,
        lines_of_code: 56_069,
        paper_trace_lines: 768,
    },
    CorpusEntry {
        name: "Ror_ecommerce",
        language: Language::Ruby,
        deployments: None,
        github_stars: 1106,
        lines_of_code: 17_224,
        paper_trace_lines: 218,
    },
    CorpusEntry {
        name: "Shoppe",
        language: Language::Ruby,
        deployments: None,
        github_stars: 835,
        lines_of_code: 4062,
        paper_trace_lines: 152,
    },
    CorpusEntry {
        name: "Oscar",
        language: Language::Python,
        deployments: None,
        github_stars: 2427,
        lines_of_code: 31_727,
        paper_trace_lines: 769,
    },
    CorpusEntry {
        name: "Saleor",
        language: Language::Python,
        deployments: None,
        github_stars: 828,
        lines_of_code: 8614,
        paper_trace_lines: 401,
    },
    CorpusEntry {
        name: "Lightning Fast Shop",
        language: Language::Python,
        deployments: None,
        github_stars: 423,
        lines_of_code: 25_163,
        paper_trace_lines: 563,
    },
    CorpusEntry {
        name: "Broadleaf",
        language: Language::Java,
        deployments: None,
        github_stars: 889,
        lines_of_code: 163_012,
        paper_trace_lines: 374,
    },
    CorpusEntry {
        name: "Shopizer",
        language: Language::Java,
        deployments: None,
        github_stars: 507,
        lines_of_code: 59_014,
        paper_trace_lines: 845,
    },
];

/// One cell of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// Vulnerable, with access pattern and anomaly type.
    Vuln {
        /// Lost-Update access pattern (vs phantom).
        lost_update: bool,
        /// Level-based anomaly (vs scope-based).
        level_based: bool,
    },
    /// Triggerable bug the paper still counts but attributes to
    /// request-header values rather than pure database state (the two
    /// `yes*` cells).
    VulnStarred {
        /// Lost-Update access pattern (vs phantom).
        lost_update: bool,
        /// Level-based anomaly (vs scope-based).
        level_based: bool,
    },
    /// Not vulnerable.
    Safe,
    /// No such functionality ("NF").
    NoFeature,
    /// Functionality ships broken ("BF").
    Broken,
    /// Not database-backed ("NDB").
    NotDbBacked,
}

impl Cell {
    /// Whether the cell counts as vulnerable (starred or not).
    pub fn is_vulnerable(self) -> bool {
        matches!(self, Cell::Vuln { .. } | Cell::VulnStarred { .. })
    }

    /// Whether the vulnerability is level-based (vs scope-based).
    pub fn level_based(self) -> Option<bool> {
        match self {
            Cell::Vuln { level_based, .. } | Cell::VulnStarred { level_based, .. } => {
                Some(level_based)
            }
            _ => None,
        }
    }

    /// Whether the access pattern is Lost Update (vs phantom).
    pub fn lost_update(self) -> Option<bool> {
        match self {
            Cell::Vuln { lost_update, .. } | Cell::VulnStarred { lost_update, .. } => {
                Some(lost_update)
            }
            _ => None,
        }
    }
}

/// Expected results for one application (one row of Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectedRow {
    /// Application name as in Table 5.
    pub name: &'static str,
    /// Expected voucher-column cell.
    pub voucher: Cell,
    /// Expected inventory-column cell.
    pub inventory: Cell,
    /// Expected cart-column cell.
    pub cart: Cell,
}

const LU_SCOPE: Cell = Cell::Vuln {
    lost_update: true,
    level_based: false,
};
const LU_LEVEL: Cell = Cell::Vuln {
    lost_update: true,
    level_based: true,
};
const PH_SCOPE: Cell = Cell::Vuln {
    lost_update: false,
    level_based: false,
};
const PH_LEVEL: Cell = Cell::Vuln {
    lost_update: false,
    level_based: true,
};
const PH_SCOPE_STAR: Cell = Cell::VulnStarred {
    lost_update: false,
    level_based: false,
};

/// Table 5 verbatim.
pub const TABLE5: [ExpectedRow; 12] = [
    ExpectedRow {
        name: "OpenCart",
        voucher: PH_SCOPE,
        inventory: LU_SCOPE,
        cart: Cell::Safe,
    },
    ExpectedRow {
        name: "PrestaShop",
        voucher: LU_SCOPE,
        inventory: LU_SCOPE,
        cart: Cell::Safe,
    },
    ExpectedRow {
        name: "Magento",
        voucher: LU_SCOPE,
        inventory: LU_SCOPE,
        cart: Cell::Safe,
    },
    ExpectedRow {
        name: "WooCommerce",
        voucher: LU_SCOPE,
        inventory: LU_SCOPE,
        cart: Cell::Safe,
    },
    ExpectedRow {
        name: "Spree",
        voucher: Cell::Safe,
        inventory: Cell::Safe,
        cart: Cell::Safe,
    },
    ExpectedRow {
        name: "Ror_ecommerce",
        voucher: Cell::NoFeature,
        inventory: LU_LEVEL,
        cart: PH_SCOPE,
    },
    ExpectedRow {
        name: "Shoppe",
        voucher: Cell::NoFeature,
        inventory: PH_SCOPE,
        cart: PH_SCOPE,
    },
    ExpectedRow {
        name: "Oscar",
        voucher: PH_LEVEL,
        inventory: LU_LEVEL,
        cart: Cell::Safe,
    },
    ExpectedRow {
        name: "Saleor",
        voucher: LU_LEVEL,
        inventory: LU_LEVEL,
        cart: Cell::NotDbBacked,
    },
    ExpectedRow {
        name: "Lightning Fast Shop",
        voucher: LU_SCOPE,
        inventory: LU_SCOPE,
        cart: PH_SCOPE,
    },
    ExpectedRow {
        name: "Broadleaf",
        voucher: PH_SCOPE,
        inventory: Cell::Broken,
        cart: PH_SCOPE_STAR,
    },
    ExpectedRow {
        name: "Shopizer",
        voucher: Cell::NoFeature,
        inventory: Cell::Broken,
        cart: PH_SCOPE_STAR,
    },
];

/// Build the full application corpus, in Table 1 order.
pub fn all_apps() -> Vec<Box<dyn ShopApp + Send + Sync>> {
    vec![
        Box::new(OpenCart),
        Box::new(PrestaShop),
        Box::new(Magento),
        Box::new(WooCommerce),
        Box::new(Spree),
        Box::new(RorEcommerce),
        Box::new(Shoppe),
        Box::new(Oscar),
        Box::new(Saleor::new()),
        Box::new(LightningFastShop),
        Box::new(Broadleaf),
        Box::new(Shopizer),
    ]
}

/// Expected Table 5 row for an application name.
pub fn expected_row(name: &str) -> Option<&'static ExpectedRow> {
    TABLE5.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FeatureStatus;

    #[test]
    fn paper_totals_hold() {
        // 22 vulnerabilities: 9 inventory, 8 voucher, 5 cart (§4.2.5).
        let voucher = TABLE5.iter().filter(|r| r.voucher.is_vulnerable()).count();
        let inventory = TABLE5
            .iter()
            .filter(|r| r.inventory.is_vulnerable())
            .count();
        let cart = TABLE5.iter().filter(|r| r.cart.is_vulnerable()).count();
        assert_eq!(voucher, 8);
        assert_eq!(inventory, 9);
        assert_eq!(cart, 5);
        assert_eq!(voucher + inventory + cart, 22);
    }

    #[test]
    fn level_vs_scope_split_matches_paper() {
        // 5 level-based, 17 scope-based (§4.2.5).
        let cells = TABLE5.iter().flat_map(|r| [r.voucher, r.inventory, r.cart]);
        let level = cells
            .clone()
            .filter(|c| c.level_based() == Some(true))
            .count();
        let scope = cells.filter(|c| c.level_based() == Some(false)).count();
        assert_eq!(level, 5);
        assert_eq!(scope, 17);
    }

    #[test]
    fn level_based_access_patterns_match_paper() {
        // Of the 5 level-based: 4 Lost Update, 1 phantom (§4.2.5).
        let cells: Vec<Cell> = TABLE5
            .iter()
            .flat_map(|r| [r.voucher, r.inventory, r.cart])
            .filter(|c| c.level_based() == Some(true))
            .collect();
        let lu = cells
            .iter()
            .filter(|c| c.lost_update() == Some(true))
            .count();
        let ph = cells
            .iter()
            .filter(|c| c.lost_update() == Some(false))
            .count();
        assert_eq!((lu, ph), (4, 1));
    }

    #[test]
    fn registry_matches_tables() {
        let apps = all_apps();
        assert_eq!(apps.len(), 12);
        for (app, entry) in apps.iter().zip(TABLE1.iter()) {
            assert_eq!(app.name(), entry.name);
            assert_eq!(app.language(), entry.language);
            assert!(expected_row(app.name()).is_some());
        }
    }

    #[test]
    fn feature_statuses_agree_with_expected_cells() {
        for app in all_apps() {
            let row = expected_row(app.name()).unwrap();
            assert_eq!(
                app.voucher_support() == FeatureStatus::NoFeature,
                row.voucher == Cell::NoFeature,
                "{}",
                app.name()
            );
            assert_eq!(
                app.inventory_support() == FeatureStatus::Broken,
                row.inventory == Cell::Broken,
                "{}",
                app.name()
            );
            assert_eq!(
                app.cart_support() == FeatureStatus::NotDbBacked,
                row.cart == Cell::NotDbBacked,
                "{}",
                app.name()
            );
        }
    }

    #[test]
    fn deployment_coverage_exceeds_2m_sites() {
        // The paper: "spanning approximately 2M websites".
        let total: u64 = TABLE1.iter().filter_map(|e| e.deployments).sum();
        assert!(total > 2_000_000, "{total}");
    }
}
