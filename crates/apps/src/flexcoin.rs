//! The Flexcoin exchange (paper §1): the real-world ACIDRain attack that
//! bankrupted a Bitcoin exchange on March 2nd, 2014.
//!
//! > "The attacker... successfully exploited a flaw in the code which
//! > allows transfers between Flexcoin users. By sending thousands of
//! > simultaneous requests, the attacker was able to 'move' coins from
//! > one user account to another until the sending account was
//! > overdrawn, before balances were updated. This was then repeated
//! > through multiple accounts, snowballing the amount, until the
//! > attacker withdrew the coins."
//!
//! The `transfer` endpoint reproduces the flaw: balance check and
//! balance updates in separate autocommitted statements (scope-based),
//! with the credited amount computed before the debit lands.

use std::sync::Arc;

use acidrain_db::{Database, IsolationLevel, Value};
use acidrain_sql::schema::{ColumnDef, ColumnType, Schema, TableSchema};

use crate::framework::{AppError, AppResult, SqlConn};

/// Schema for the exchange: one `wallets` table (id, coins).
pub fn exchange_schema() -> Schema {
    Schema::new().with_table(TableSchema::new(
        "wallets",
        vec![
            ColumnDef::new("id", ColumnType::Int).auto_increment(),
            ColumnDef::new("owner", ColumnType::Str),
            ColumnDef::new("coins", ColumnType::Int),
        ],
    ))
}

/// The simulated exchange.
pub struct Flexcoin;

impl Flexcoin {
    /// A fresh exchange holding `reserve` coins in the house wallet
    /// (id 1) plus two attacker-controlled wallets (ids 2 and 3).
    pub fn make_exchange(
        &self,
        isolation: IsolationLevel,
        reserve: i64,
        attacker_funds: i64,
    ) -> Arc<Database> {
        let db = Database::new(exchange_schema(), isolation);
        db.seed(
            "wallets",
            vec![
                vec![Value::Null, "house".into(), Value::Int(reserve)],
                vec![Value::Null, "mallory-a".into(), Value::Int(attacker_funds)],
                vec![Value::Null, "mallory-b".into(), Value::Int(0)],
            ],
        )
        .expect("seed wallets");
        db
    }

    /// `POST /api/transfer` — the vulnerable endpoint: check, then two
    /// blind balance writes, no transaction.
    pub fn transfer(
        &self,
        conn: &mut dyn SqlConn,
        from: i64,
        to: i64,
        amount: i64,
    ) -> AppResult<()> {
        if amount <= 0 || from == to {
            return Err(AppError::Rejected("invalid transfer".into()));
        }
        let from_balance = conn
            .exec(&format!("SELECT coins FROM wallets WHERE id = {from}"))?
            .scalar_i64()
            .unwrap_or(0);
        if from_balance < amount {
            return Err(AppError::Rejected("insufficient coins".into()));
        }
        // The fatal combination: the debit writes an application-computed
        // value from the stale read (concurrent debits collapse into one),
        // while the credit is a relative increment (every concurrent
        // credit lands). Racing W transfers moves the coins W times.
        conn.exec(&format!(
            "UPDATE wallets SET coins = {} WHERE id = {from}",
            from_balance - amount
        ))?;
        conn.exec(&format!(
            "UPDATE wallets SET coins = coins + {amount} WHERE id = {to}"
        ))?;
        Ok(())
    }

    /// `POST /api/withdraw` — cash out to an external address (burns
    /// coins from the wallet); correctly guarded, like the real one: the
    /// theft happened in `transfer`.
    pub fn withdraw(&self, conn: &mut dyn SqlConn, wallet: i64, amount: i64) -> AppResult<()> {
        let balance = conn
            .exec(&format!(
                "SELECT coins FROM wallets WHERE id = {wallet} FOR UPDATE"
            ))?
            .scalar_i64()
            .unwrap_or(0);
        if balance < amount {
            return Err(AppError::Rejected("insufficient coins".into()));
        }
        conn.exec(&format!(
            "UPDATE wallets SET coins = coins - {amount} WHERE id = {wallet}"
        ))?;
        Ok(())
    }
}

/// The exchange's solvency invariant: no wallet is negative, and total
/// coins on the books never exceed what was ever deposited.
pub fn check_solvency(db: &Database, total_deposited: i64) -> Result<(), String> {
    let wallets = db.table_rows("wallets").map_err(|e| e.to_string())?;
    let mut total = 0;
    for w in &wallets {
        let coins = w[2].as_i64().unwrap_or(0);
        if coins < 0 {
            return Err(format!("wallet {} is overdrawn: {coins}", w[1]));
        }
        total += coins;
    }
    if total > total_deposited {
        return Err(format!(
            "{total} coins on the books but only {total_deposited} were ever deposited: \
             {} coins were conjured",
            total - total_deposited
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_transfers_preserve_solvency() {
        let ex = Flexcoin;
        let db = ex.make_exchange(IsolationLevel::ReadCommitted, 1000, 50);
        let mut conn = db.connect();
        ex.transfer(&mut conn, 2, 3, 30).unwrap();
        ex.transfer(&mut conn, 3, 2, 10).unwrap();
        let err = ex.transfer(&mut conn, 2, 3, 1000).unwrap_err();
        assert!(matches!(err, AppError::Rejected(_)));
        check_solvency(&db, 1050).unwrap();
    }

    #[test]
    fn invalid_transfers_rejected() {
        let ex = Flexcoin;
        let db = ex.make_exchange(IsolationLevel::ReadCommitted, 1000, 50);
        let mut conn = db.connect();
        assert!(ex.transfer(&mut conn, 2, 2, 10).is_err());
        assert!(ex.transfer(&mut conn, 2, 3, 0).is_err());
        assert!(ex.transfer(&mut conn, 2, 3, -5).is_err());
    }

    #[test]
    fn withdraw_is_guarded() {
        let ex = Flexcoin;
        let db = ex.make_exchange(IsolationLevel::ReadCommitted, 1000, 50);
        let mut conn = db.connect();
        ex.withdraw(&mut conn, 2, 50).unwrap();
        assert!(ex.withdraw(&mut conn, 2, 1).is_err());
        check_solvency(&db, 1050).unwrap();
    }

    #[test]
    fn solvency_detects_conjured_coins() {
        let ex = Flexcoin;
        let db = ex.make_exchange(IsolationLevel::ReadCommitted, 100, 0);
        let mut conn = db.connect();
        conn.execute("UPDATE wallets SET coins = 500 WHERE id = 2")
            .unwrap();
        assert!(check_solvency(&db, 100).is_err());
        let db = ex.make_exchange(IsolationLevel::ReadCommitted, 100, 0);
        let mut conn = db.connect();
        conn.execute("UPDATE wallets SET coins = -5 WHERE id = 2")
            .unwrap();
        assert!(check_solvency(&db, 100).is_err());
    }
}
