//! # acidrain-apps
//!
//! The simulated application corpus for the ACIDRain reproduction
//! (Warszawski & Bailis, SIGMOD 2017, §4): twelve eCommerce applications
//! whose endpoints issue the same SQL access patterns — transaction
//! scoping, `SELECT FOR UPDATE` usage, single-vs-double cart reads,
//! revalidation, session locking, in-database mutexes — that the paper
//! documents per application, plus the paper's didactic examples (the
//! Figure-1 bank, the Figure-3 payroll app, the Figure-9 mini-shop), the
//! three target invariants (Table 3), and the Table 1 / Table 5 oracles.
//!
//! ```
//! use acidrain_apps::prelude::*;
//! use acidrain_db::IsolationLevel;
//!
//! let app = PrestaShop;
//! let db = app.make_store(IsolationLevel::ReadCommitted);
//! let mut conn = db.connect();
//! app.add_to_cart(&mut conn, 1, PEN, 2).unwrap();
//! let order = app.checkout(&mut conn, 1, &CheckoutRequest::plain()).unwrap();
//! assert!(order > 0);
//! check_cart(&db).unwrap();
//! ```

#![warn(missing_docs)]

pub mod booking;
pub mod corpus;
pub mod didactic;
pub mod endpoints;
pub mod flexcoin;
pub mod framework;
pub mod invariants;
pub mod java;
pub mod php;
pub mod python;
pub mod repair;
pub mod retry;
pub mod ruby;

pub use corpus::{all_apps, expected_row, Cell, CorpusEntry, ExpectedRow, TABLE1, TABLE5};
pub use endpoints::{
    all_surfaces, booking_surfaces, corpus_surfaces, didactic_surfaces, flexcoin_surface,
    AppSurface, Scenario, INVENTORY_QTY,
};
pub use framework::{
    observed_request, AppError, AppResult, CheckoutRequest, FeatureStatus, Language, ShopApp,
    SqlConn, StockModel,
};
pub use invariants::{check_cart, check_inventory, check_voucher, Violation};
pub use repair::{
    can_repair, is_transaction_control_sql, uses_transaction_control, Repair, Repaired,
};
pub use retry::{RetryConfig, RetryConn, RetryPolicy, RetryStats};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::corpus::{all_apps, expected_row, Cell, TABLE1, TABLE5};
    pub use crate::endpoints::{
        all_surfaces, corpus_surfaces, AppSurface, Scenario, INVENTORY_QTY,
    };
    pub use crate::framework::{
        clear_cart, insert_order, insert_order_items, observed_request, query_i64, read_cart,
        read_cart_total, seed_store, shop_schema, AppError, AppResult, CheckoutRequest,
        FeatureStatus, Language, ShopApp, SqlConn, StockModel, LAPTOP, LAPTOP_PRICE, LAPTOP_STOCK,
        PEN, PEN_PRICE, PEN_STOCK, VOUCHER_CODE, VOUCHER_ID, VOUCHER_LIMIT,
    };
    pub use crate::invariants::{check_cart, check_inventory, check_voucher, Violation};
    pub use crate::java::{Broadleaf, Shopizer};
    pub use crate::php::{Magento, OpenCart, PrestaShop, WooCommerce};
    pub use crate::python::{LightningFastShop, Oscar, Saleor};
    pub use crate::retry::{RetryConfig, RetryConn, RetryPolicy, RetryStats};
    pub use crate::ruby::{RorEcommerce, Shoppe, Spree};
}
