//! The Python/Django applications: Oscar, Saleor, Lightning Fast Shop.
//!
//! Idioms reproduced from the paper: Oscar wraps checkout in one Django
//! transaction (`set autocommit=0` ... `commit`, Figure 6) — so its
//! voucher and inventory anomalies are *level-based*: a predicate read of
//! the applications table (phantom) and a read-then-blind-write of stock
//! (Lost Update), both inside the transaction. Its cart derives items and
//! total from a single read. Saleor also runs level-based (atomic
//! requests) but its cart lives in session state, not the database (the
//! paper's "NDB"). Lightning Fast Shop lets the ORM wrap each *write* in
//! its own tiny transaction (Figure 8) — everything is scope-based — and
//! reads the cart twice during checkout.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::framework::*;

fn cart_insert(conn: &mut dyn SqlConn, cart: i64, product: i64, qty: i64) -> AppResult<()> {
    conn.exec(&format!(
        "INSERT INTO cart_items (cart_id, product_id, qty) VALUES ({cart}, {product}, {qty})"
    ))?;
    Ok(())
}

/// django-oscar.
pub struct Oscar;

impl ShopApp for Oscar {
    fn name(&self) -> &'static str {
        "Oscar"
    }

    fn language(&self) -> Language {
        Language::Python
    }

    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        cart_insert(conn, cart, product, qty)
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        // One Django transaction around the whole request (Figure 6 shows
        // `set autocommit=0` ... `commit`).
        conn.exec("SET autocommit=0")?;
        let result = self.checkout_inner(conn, cart, req);
        match &result {
            Ok(_) => {
                conn.exec("COMMIT")?;
            }
            Err(_) => {
                conn.exec("ROLLBACK")?;
            }
        }
        conn.exec("SET autocommit=1")?;
        result
    }
}

impl Oscar {
    fn checkout_inner(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        req: &CheckoutRequest,
    ) -> AppResult<i64> {
        // Voucher availability: Figure 6 verbatim — a predicate existence
        // probe on the applications table (phantom, level-based).
        if req.voucher_code.is_some() {
            let rs = conn.exec(&format!(
                "SELECT (1) AS a FROM voucher_applications WHERE \
                 voucher_applications.voucher_id = {VOUCHER_ID} LIMIT 1"
            ))?;
            if !rs.is_empty() {
                return Err(AppError::Rejected("voucher already used".into()));
            }
        }
        // Single cart read: items and total from the same rows.
        let lines = read_cart(conn, cart)?;
        if lines.is_empty() {
            return Err(AppError::Rejected("empty cart".into()));
        }
        let total: i64 = lines.iter().map(|(_, q, p)| q * p).sum();
        let order = insert_order(conn, cart, total)?;
        insert_order_items(conn, order, &lines)?;
        // Inventory: read-check-blind-write inside the transaction
        // (Lost Update, level-based).
        for (product, qty, _) in &lines {
            let stock = query_i64(
                conn,
                &format!("SELECT stock FROM products WHERE id = {product}"),
            )?;
            if stock < *qty {
                return Err(AppError::Rejected(format!(
                    "product {product} out of stock"
                )));
            }
            conn.exec(&format!(
                "UPDATE products SET stock = {} WHERE id = {product}",
                stock - qty
            ))?;
        }
        if req.voucher_code.is_some() {
            conn.exec(&format!(
                "INSERT INTO voucher_applications (voucher_id, order_id) VALUES \
                 ({VOUCHER_ID}, {order})"
            ))?;
        }
        clear_cart(conn, cart)?;
        mark_order_placed(conn, order)?;
        Ok(order)
    }
}

/// Saleor: the cart is session state (paper "NDB"); the database work runs
/// inside one transaction with Lost Update shapes on vouchers and stock.
pub struct Saleor {
    /// Session-backed carts: cart id -> (product, qty) lines. Deliberately
    /// invisible to the database and therefore to 2AD.
    session_carts: Mutex<HashMap<i64, Vec<(i64, i64)>>>,
}

impl Saleor {
    /// A Saleor instance with an empty session-cart store.
    pub fn new() -> Self {
        Saleor {
            session_carts: Mutex::new(HashMap::new()),
        }
    }
}

impl Default for Saleor {
    fn default() -> Self {
        Saleor::new()
    }
}

impl ShopApp for Saleor {
    fn name(&self) -> &'static str {
        "Saleor"
    }

    fn language(&self) -> Language {
        Language::Python
    }

    fn cart_support(&self) -> FeatureStatus {
        FeatureStatus::NotDbBacked
    }

    fn reset_session_state(&self) {
        self.session_carts.lock().clear();
    }

    fn add_to_cart(
        &self,
        _conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        // No SQL at all: the cart lives in the session.
        self.session_carts
            .lock()
            .entry(cart)
            .or_default()
            .push((product, qty));
        Ok(())
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        let lines: Vec<(i64, i64)> = self
            .session_carts
            .lock()
            .get(&cart)
            .cloned()
            .unwrap_or_default();
        if lines.is_empty() {
            return Err(AppError::Rejected("empty cart".into()));
        }
        conn.exec("SET autocommit=0")?;
        let result = self.checkout_inner(conn, &lines, req);
        match &result {
            Ok(_) => {
                conn.exec("COMMIT")?;
                self.session_carts.lock().remove(&cart);
            }
            Err(_) => {
                conn.exec("ROLLBACK")?;
            }
        }
        conn.exec("SET autocommit=1")?;
        result
    }
}

impl Saleor {
    fn checkout_inner(
        &self,
        conn: &mut dyn SqlConn,
        lines: &[(i64, i64)],
        req: &CheckoutRequest,
    ) -> AppResult<i64> {
        let mut total = 0;
        let mut priced: Vec<CartLine> = Vec::new();
        for (product, qty) in lines {
            let price = query_i64(
                conn,
                &format!("SELECT price FROM products WHERE id = {product}"),
            )?;
            total += price * qty;
            priced.push((*product, *qty, price));
        }
        let order = insert_order(conn, 0, total)?;
        insert_order_items(conn, order, &priced)?;
        // Voucher: Lost Update shape, level-based; the redemption is
        // recorded against the order inside the same transaction.
        if req.voucher_code.is_some() {
            let used = query_i64(
                conn,
                &format!("SELECT used FROM vouchers WHERE id = {VOUCHER_ID}"),
            )?;
            let limit = query_i64(
                conn,
                &format!("SELECT usage_limit FROM vouchers WHERE id = {VOUCHER_ID}"),
            )?;
            if used >= limit {
                return Err(AppError::Rejected("voucher exhausted".into()));
            }
            conn.exec(&format!(
                "UPDATE vouchers SET used = {} WHERE id = {VOUCHER_ID}",
                used + 1
            ))?;
            conn.exec(&format!(
                "INSERT INTO voucher_applications (voucher_id, order_id) VALUES \
                 ({VOUCHER_ID}, {order})"
            ))?;
        }
        // Inventory: Lost Update shape, level-based.
        for (product, qty, _) in &priced {
            let stock = query_i64(
                conn,
                &format!("SELECT stock FROM products WHERE id = {product}"),
            )?;
            if stock < *qty {
                return Err(AppError::Rejected(format!(
                    "product {product} out of stock"
                )));
            }
            conn.exec(&format!(
                "UPDATE products SET stock = {} WHERE id = {product}",
                stock - qty
            ))?;
        }
        mark_order_placed(conn, order)?;
        Ok(order)
    }
}

/// Lightning Fast Shop (django-lfs): the only application with all three
/// vulnerabilities. The ORM wraps each write in its own one-statement
/// transaction (Figure 8); the cart is read twice during checkout.
pub struct LightningFastShop;

impl LightningFastShop {
    /// The Figure-8 ORM idiom: `set autocommit=0; <write>; commit`.
    fn orm_write(&self, conn: &mut dyn SqlConn, sql: &str) -> AppResult<ResultHolder> {
        conn.exec("SET autocommit=0")?;
        let rs = conn.exec(sql)?;
        conn.exec("COMMIT")?;
        conn.exec("SET autocommit=1")?;
        Ok(ResultHolder(rs))
    }
}

/// Thin wrapper so callers can reach `last_insert_id` from `orm_write`.
pub struct ResultHolder(pub acidrain_db::ResultSet);

impl ShopApp for LightningFastShop {
    fn name(&self) -> &'static str {
        "Lightning Fast Shop"
    }

    fn language(&self) -> Language {
        Language::Python
    }

    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        self.orm_write(
            conn,
            &format!(
                "INSERT INTO cart_items (cart_id, product_id, qty) VALUES \
                 ({cart}, {product}, {qty})"
            ),
        )?;
        Ok(())
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        // Read #1: order total (Figure 8b line 388).
        let total = read_cart_total(conn, cart)?;
        if total == 0 {
            return Err(AppError::Rejected("empty cart".into()));
        }
        let order = self
            .orm_write(
                conn,
                &format!(
                    "INSERT INTO orders (cart_id, total, status) VALUES \
                     ({cart}, {total}, 'pending')"
                ),
            )?
            .0
            .last_insert_id()
            .expect("order id");
        // Read #2: line items (Figure 8b line 438) — the window for the
        // cart attack.
        let lines = read_cart(conn, cart)?;
        for (product, qty, price) in &lines {
            self.orm_write(
                conn,
                &format!(
                    "INSERT INTO order_items (order_id, product_id, qty, price) VALUES \
                     ({order}, {product}, {qty}, {price})"
                ),
            )?;
        }
        // Voucher: Lost Update, scope-based (counter read and write in
        // separate ORM transactions).
        if req.voucher_code.is_some() {
            let used = query_i64(
                conn,
                &format!("SELECT used FROM vouchers WHERE id = {VOUCHER_ID}"),
            )?;
            let limit = query_i64(
                conn,
                &format!("SELECT usage_limit FROM vouchers WHERE id = {VOUCHER_ID}"),
            )?;
            if used >= limit {
                return Err(AppError::Rejected("voucher exhausted".into()));
            }
            self.orm_write(
                conn,
                &format!(
                    "UPDATE vouchers SET used = {} WHERE id = {VOUCHER_ID}",
                    used + 1
                ),
            )?;
            self.orm_write(
                conn,
                &format!(
                    "INSERT INTO voucher_applications (voucher_id, order_id) VALUES \
                     ({VOUCHER_ID}, {order})"
                ),
            )?;
        }
        // Inventory: Lost Update, scope-based.
        for (product, qty, _) in &lines {
            let stock = query_i64(
                conn,
                &format!("SELECT stock FROM products WHERE id = {product}"),
            )?;
            if stock < *qty {
                return Err(AppError::Rejected(format!(
                    "product {product} out of stock"
                )));
            }
            self.orm_write(
                conn,
                &format!(
                    "UPDATE products SET stock = {} WHERE id = {product}",
                    stock - qty
                ),
            )?;
        }
        self.orm_write(
            conn,
            &format!("DELETE FROM cart_items WHERE cart_id = {cart}"),
        )?;
        self.orm_write(
            conn,
            &format!("UPDATE orders SET status = 'placed' WHERE id = {order}"),
        )?;
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acidrain_db::IsolationLevel;

    #[test]
    fn oscar_serial_flow_and_figure6_log_shape() {
        let db = Oscar.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        Oscar.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
        Oscar
            .checkout(&mut conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            .unwrap();
        let log: Vec<String> = db.log_entries().iter().map(|e| e.sql.clone()).collect();
        // Figure 6's shape: autocommit off, existence probe with LIMIT 1,
        // insert into the applications table, commit.
        let ac = log.iter().position(|s| s.contains("autocommit=0")).unwrap();
        let probe = log.iter().position(|s| s.contains("LIMIT 1")).unwrap();
        let ins = log
            .iter()
            .position(|s| s.contains("INSERT INTO voucher_applications"))
            .unwrap();
        let commit = log.iter().rposition(|s| s == "COMMIT").unwrap();
        assert!(ac < probe && probe < ins && ins < commit, "{log:#?}");
        // Second use refused serially.
        Oscar.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
        let err = Oscar
            .checkout(&mut conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            .unwrap_err();
        assert!(matches!(err, AppError::Rejected(_)));
    }

    #[test]
    fn oscar_rolls_back_failed_checkout() {
        let db = Oscar.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        Oscar
            .add_to_cart(&mut conn, 1, LAPTOP, LAPTOP_STOCK + 1)
            .unwrap();
        let err = Oscar
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap_err();
        assert!(matches!(err, AppError::Rejected(_)));
        // The transaction rolled back: no dangling order.
        assert_eq!(
            query_i64(&mut conn, "SELECT COUNT(*) FROM orders").unwrap(),
            0
        );
        assert_eq!(
            query_i64(
                &mut conn,
                &format!("SELECT stock FROM products WHERE id = {LAPTOP}")
            )
            .unwrap(),
            LAPTOP_STOCK
        );
    }

    #[test]
    fn saleor_cart_generates_no_sql() {
        let app = Saleor::new();
        let db = app.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        app.add_to_cart(&mut conn, 1, PEN, 2).unwrap();
        assert!(
            db.log_entries().is_empty(),
            "session cart must not touch the database"
        );
        let order = app
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap();
        assert!(order > 0);
        assert_eq!(
            query_i64(
                &mut conn,
                &format!("SELECT stock FROM products WHERE id = {PEN}")
            )
            .unwrap(),
            PEN_STOCK - 2
        );
        // Cart consumed.
        let err = app
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap_err();
        assert!(matches!(err, AppError::Rejected(_)));
    }

    #[test]
    fn lfs_orm_wraps_each_write_in_its_own_txn() {
        let db = LightningFastShop.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        LightningFastShop.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
        let log: Vec<String> = db.log_entries().iter().map(|e| e.sql.clone()).collect();
        assert_eq!(
            log,
            vec![
                "SET autocommit=0".to_string(),
                "INSERT INTO cart_items (cart_id, product_id, qty) VALUES (1, 1, 1)".to_string(),
                "COMMIT".to_string(),
                "SET autocommit=1".to_string(),
            ]
        );
        // Checkout reads the cart twice (Figure 8's two SELECTs).
        LightningFastShop
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap();
        let log: Vec<String> = db.log_entries().iter().map(|e| e.sql.clone()).collect();
        let cart_reads = log
            .iter()
            .filter(|s| s.starts_with("SELECT") && s.contains("cart_items"))
            .count();
        assert_eq!(cart_reads, 2, "{log:#?}");
    }

    #[test]
    fn lfs_serial_flow_with_voucher() {
        let db = LightningFastShop.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        LightningFastShop.add_to_cart(&mut conn, 1, PEN, 3).unwrap();
        LightningFastShop
            .checkout(&mut conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            .unwrap();
        assert_eq!(
            query_i64(&mut conn, "SELECT used FROM vouchers WHERE id = 1").unwrap(),
            1
        );
        assert_eq!(
            query_i64(
                &mut conn,
                &format!("SELECT stock FROM products WHERE id = {PEN}")
            )
            .unwrap(),
            PEN_STOCK - 3
        );
    }
}
