//! Remediation (paper §4.2.7 "Potential fixes" and §6): repair strategies
//! applied as wrappers around an application, so the fix can be verified
//! by re-running the same ACIDRain attack against the repaired endpoint.
//!
//! * [`Repair::TransactionScoping`] — "for scope-based anomalies,
//!   refactoring to properly group operations within transactions is
//!   required": the wrapper encapsulates each endpoint in one
//!   `BEGIN`/`COMMIT` pair. This converts scope-based anomalies into
//!   level-based ones — it only *removes* them when combined with a
//!   strong enough isolation level.
//! * [`Repair::ScopingAndSerializable`] — the full fix: scoping plus
//!   running the session at Serializable, "as the correctly-scoped
//!   application transactions would exhibit serializable behavior"
//!   (§4.2.1).
//!
//! Scoping wraps the inner endpoint's statements verbatim, so it is only
//! applicable to applications whose endpoints are not already using
//! transaction control of their own (nesting `BEGIN` inside `BEGIN`
//! implicitly commits, which would corrupt the repair).

use std::sync::Arc;

use acidrain_db::{Database, IsolationLevel, LogEntry};

use crate::framework::{
    AppResult, CheckoutRequest, FeatureStatus, Language, ShopApp, SqlConn, StockModel,
};

/// Whether a concrete SQL string is transaction control (`BEGIN`,
/// `START TRANSACTION`, `COMMIT`, `ROLLBACK`, or a `SET autocommit`
/// toggle).
///
/// This is the single source of truth for the "endpoint already uses
/// transaction control" gate shared by [`can_repair`] and the static
/// repair adviser's scoping candidates.
pub fn is_transaction_control_sql(sql: &str) -> bool {
    let sql = sql.trim().to_ascii_uppercase();
    sql.starts_with("BEGIN")
        || sql.starts_with("START TRANSACTION")
        || sql.starts_with("COMMIT")
        || sql.starts_with("ROLLBACK")
        || sql.contains("AUTOCOMMIT")
}

/// Whether any entry in a recorded log issues transaction control.
pub fn uses_transaction_control(entries: &[LogEntry]) -> bool {
    entries.iter().any(|e| is_transaction_control_sql(&e.sql))
}

/// The repair strategy applied by [`Repaired`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Repair {
    /// Wrap each API call in a single transaction (fixes nothing by
    /// itself at weak isolation — the anomaly becomes level-based).
    TransactionScoping,
    /// Wrap each API call in a single transaction *and* run sessions at
    /// Serializable — the paper's complete remediation.
    ScopingAndSerializable,
}

/// An application with a repair applied to its endpoints.
pub struct Repaired<'a> {
    inner: &'a dyn ShopApp,
    repair: Repair,
}

impl<'a> Repaired<'a> {
    /// Wrap `inner` with `repair`. Panics if the application already uses
    /// transaction control inside its endpoints (see module docs).
    pub fn new(inner: &'a dyn ShopApp, repair: Repair) -> Self {
        assert!(
            can_repair(inner),
            "{} uses transaction control internally; statement-level re-scoping would nest \
             transactions",
            inner.name()
        );
        Repaired { inner, repair }
    }

    fn in_endpoint_txn<T>(
        &self,
        conn: &mut dyn SqlConn,
        body: impl FnOnce(&mut dyn SqlConn) -> AppResult<T>,
    ) -> AppResult<T> {
        conn.exec("BEGIN")?;
        match body(conn) {
            Ok(v) => {
                conn.exec("COMMIT")?;
                Ok(v)
            }
            Err(e) => {
                // Statement-level database errors may already have rolled
                // the transaction back; a ROLLBACK on a closed transaction
                // is a no-op.
                conn.exec("ROLLBACK")?;
                Err(e)
            }
        }
    }
}

/// Whether an application's endpoints are free of internal transaction
/// control, making them safely wrappable.
pub fn can_repair(app: &dyn ShopApp) -> bool {
    // Conservative, behavior-derived check: run the endpoints serially on
    // a scratch store and inspect the log for transaction control.
    let db = app.make_store(IsolationLevel::ReadCommitted);
    let mut conn = db.connect();
    let _ = app.add_to_cart(&mut conn, 1, crate::framework::PEN, 1);
    let _ = app.checkout(&mut conn, 1, &CheckoutRequest::plain());
    drop(conn);
    !uses_transaction_control(&db.log_entries())
}

impl ShopApp for Repaired<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn language(&self) -> Language {
        self.inner.language()
    }

    fn voucher_support(&self) -> FeatureStatus {
        self.inner.voucher_support()
    }

    fn inventory_support(&self) -> FeatureStatus {
        self.inner.inventory_support()
    }

    fn cart_support(&self) -> FeatureStatus {
        self.inner.cart_support()
    }

    fn session_locked(&self) -> bool {
        self.inner.session_locked()
    }

    fn stock_model(&self) -> StockModel {
        self.inner.stock_model()
    }

    fn total_from_request(&self) -> bool {
        self.inner.total_from_request()
    }

    fn reset_session_state(&self) {
        self.inner.reset_session_state();
    }

    fn make_store(&self, isolation: IsolationLevel) -> Arc<Database> {
        // The full repair pins sessions at Serializable regardless of the
        // requested level (the paper's "upgrade the isolation level ...
        // to serializability").
        let effective = match self.repair {
            Repair::TransactionScoping => isolation,
            Repair::ScopingAndSerializable => IsolationLevel::Serializable,
        };
        self.inner.make_store(effective)
    }

    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        self.in_endpoint_txn(conn, |c| self.inner.add_to_cart(c, cart, product, qty))
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        self.in_endpoint_txn(conn, |c| self.inner.checkout(c, cart, req))
    }
}

impl std::fmt::Debug for Repaired<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Repaired({}, {:?})", self.inner.name(), self.repair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{query_i64, AppError, PEN, PEN_PRICE, PEN_STOCK, VOUCHER_CODE};
    use crate::php::{Magento, PrestaShop};
    use crate::python::Oscar;
    use crate::ruby::Shoppe;

    #[test]
    fn repairable_apps_detected() {
        assert!(can_repair(&PrestaShop));
        assert!(can_repair(&Shoppe));
        assert!(
            !can_repair(&Magento),
            "Magento's inventory txn makes it unwrappable"
        );
        assert!(!can_repair(&Oscar), "Oscar already wraps checkout");
    }

    #[test]
    #[should_panic(expected = "transaction control internally")]
    fn wrapping_a_txn_using_app_panics() {
        let _ = Repaired::new(&Magento, Repair::TransactionScoping);
    }

    #[test]
    fn repaired_endpoints_work_serially() {
        for repair in [Repair::TransactionScoping, Repair::ScopingAndSerializable] {
            let app = Repaired::new(&PrestaShop, repair);
            let db = app.make_store(IsolationLevel::ReadCommitted);
            let mut conn = db.connect();
            app.add_to_cart(&mut conn, 1, PEN, 2).unwrap();
            let order = app
                .checkout(&mut conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
                .unwrap();
            assert_eq!(
                query_i64(
                    &mut conn,
                    &format!("SELECT total FROM orders WHERE id = {order}")
                )
                .unwrap(),
                2 * PEN_PRICE
            );
            assert_eq!(
                query_i64(
                    &mut conn,
                    &format!("SELECT stock FROM products WHERE id = {PEN}")
                )
                .unwrap(),
                PEN_STOCK - 2
            );
        }
    }

    #[test]
    fn rejected_checkout_rolls_back_entirely() {
        // Unlike the unrepaired app, a failed checkout leaves no trace at
        // all (the whole endpoint is one transaction).
        let app = Repaired::new(&PrestaShop, Repair::TransactionScoping);
        let db = app.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        app.add_to_cart(&mut conn, 1, PEN, PEN_STOCK + 1).unwrap();
        let err = app
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap_err();
        assert!(matches!(err, AppError::Rejected(_)));
        assert_eq!(
            query_i64(&mut conn, "SELECT COUNT(*) FROM orders").unwrap(),
            0
        );
    }

    #[test]
    fn scoping_log_shape() {
        let app = Repaired::new(&PrestaShop, Repair::TransactionScoping);
        let db = app.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        app.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
        let log: Vec<String> = db.log_entries().iter().map(|e| e.sql.clone()).collect();
        assert_eq!(log.first().map(String::as_str), Some("BEGIN"));
        assert_eq!(log.last().map(String::as_str), Some("COMMIT"));
    }
}
