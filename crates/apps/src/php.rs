//! The PHP applications: OpenCart, PrestaShop, Magento, WooCommerce.
//!
//! Idioms reproduced from the paper: none of the four wraps its critical
//! sections in multi-statement transactions (the PHP rows of Table 5 are
//! all scope-based); OpenCart relies on PHP session locking, which
//! incidentally protects its cart (§4.2.6); Magento takes a `SELECT ...
//! FOR UPDATE` on the stock row but performs its guard check on an earlier
//! read outside the transaction (Figure 7); PrestaShop and WooCommerce
//! derive order total and order items from a single cart read; Magento
//! recomputes the total after each cart read (multiple validations).

use crate::framework::*;

// ---------------------------------------------------------------------------
// Shared PHP-style building blocks (autocommit everywhere).

/// Voucher redemption via an applications table: predicate COUNT then
/// INSERT, in separate autocommitted statements (phantom, scope-based).
fn voucher_phantom_scope(conn: &mut dyn SqlConn, order: i64) -> AppResult<()> {
    let uses = query_i64(
        conn,
        &format!("SELECT COUNT(*) FROM voucher_applications WHERE voucher_id = {VOUCHER_ID}"),
    )?;
    let limit = query_i64(
        conn,
        &format!("SELECT usage_limit FROM vouchers WHERE id = {VOUCHER_ID}"),
    )?;
    if uses >= limit {
        return Err(AppError::Rejected("voucher exhausted".into()));
    }
    conn.exec(&format!(
        "INSERT INTO voucher_applications (voucher_id, order_id) VALUES ({VOUCHER_ID}, {order})"
    ))?;
    Ok(())
}

/// Voucher redemption via a usage counter: key read, application-side
/// arithmetic, blind write — the Lost Update shape, scope-based. The
/// redemption itself is recorded against the order (every real app stores
/// which order a discount applied to).
fn voucher_lu_scope(conn: &mut dyn SqlConn, order: i64) -> AppResult<()> {
    let used = query_i64(
        conn,
        &format!("SELECT used FROM vouchers WHERE id = {VOUCHER_ID}"),
    )?;
    let limit = query_i64(
        conn,
        &format!("SELECT usage_limit FROM vouchers WHERE id = {VOUCHER_ID}"),
    )?;
    if used >= limit {
        return Err(AppError::Rejected("voucher exhausted".into()));
    }
    conn.exec(&format!(
        "UPDATE vouchers SET used = {} WHERE id = {VOUCHER_ID}",
        used + 1
    ))?;
    conn.exec(&format!(
        "INSERT INTO voucher_applications (voucher_id, order_id) VALUES ({VOUCHER_ID}, {order})"
    ))?;
    Ok(())
}

/// Stock decrement with an application-side guard and blind write, each in
/// its own autocommitted statement (Lost Update, scope-based).
fn inventory_lu_scope(conn: &mut dyn SqlConn, lines: &[CartLine]) -> AppResult<()> {
    for (product, qty, _) in lines {
        let stock = query_i64(
            conn,
            &format!("SELECT stock FROM products WHERE id = {product}"),
        )?;
        if stock < *qty {
            return Err(AppError::Rejected(format!(
                "product {product} out of stock"
            )));
        }
        conn.exec(&format!(
            "UPDATE products SET stock = {} WHERE id = {product}",
            stock - qty
        ))?;
    }
    Ok(())
}

/// Plain cart insert.
fn cart_insert(conn: &mut dyn SqlConn, cart: i64, product: i64, qty: i64) -> AppResult<()> {
    conn.exec(&format!(
        "INSERT INTO cart_items (cart_id, product_id, qty) VALUES ({cart}, {product}, {qty})"
    ))?;
    Ok(())
}

// ---------------------------------------------------------------------------

/// OpenCart: no transactions anywhere; PHP session locking serializes
/// same-session requests (which protects the cart, §4.2.6, but not the
/// store-shared voucher and inventory rows).
pub struct OpenCart;

impl ShopApp for OpenCart {
    fn name(&self) -> &'static str {
        "OpenCart"
    }

    fn language(&self) -> Language {
        Language::Php
    }

    fn session_locked(&self) -> bool {
        true
    }

    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        // OpenCart reads the cart row first (merge quantities), then
        // writes — still no transaction.
        let existing = query_i64(
            conn,
            &format!(
                "SELECT qty FROM cart_items WHERE cart_id = {cart} AND product_id = {product}"
            ),
        )?;
        if existing > 0 {
            conn.exec(&format!(
                "UPDATE cart_items SET qty = {} WHERE cart_id = {cart} AND \
                 product_id = {product}",
                existing + qty
            ))?;
        } else {
            cart_insert(conn, cart, product, qty)?;
        }
        Ok(())
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        // Two separate reads of the cart: one for the total, one for the
        // line items (the vulnerable shape — rescued only by session
        // locking).
        let total = read_cart_total(conn, cart)?;
        if total == 0 {
            return Err(AppError::Rejected("empty cart".into()));
        }
        let order = insert_order(conn, cart, total)?;
        let lines = read_cart(conn, cart)?;
        insert_order_items(conn, order, &lines)?;
        inventory_lu_scope(conn, &lines)?;
        if req.voucher_code.is_some() {
            voucher_phantom_scope(conn, order)?;
        }
        clear_cart(conn, cart)?;
        mark_order_placed(conn, order)?;
        Ok(order)
    }
}

/// PrestaShop: single cart read protects the cart; voucher counter and
/// stock guard are read-then-blind-write in autocommitted statements.
pub struct PrestaShop;

impl ShopApp for PrestaShop {
    fn name(&self) -> &'static str {
        "PrestaShop"
    }

    fn language(&self) -> Language {
        Language::Php
    }

    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        cart_insert(conn, cart, product, qty)
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        // Single read: items and total both derive from `lines`.
        let lines = read_cart(conn, cart)?;
        if lines.is_empty() {
            return Err(AppError::Rejected("empty cart".into()));
        }
        let total: i64 = lines.iter().map(|(_, q, p)| q * p).sum();
        let order = insert_order(conn, cart, total)?;
        insert_order_items(conn, order, &lines)?;
        inventory_lu_scope(conn, &lines)?;
        if req.voucher_code.is_some() {
            voucher_lu_scope(conn, order)?;
        }
        clear_cart(conn, cart)?;
        mark_order_placed(conn, order)?;
        Ok(order)
    }
}

/// Magento: the Figure-7 inventory pattern — a guard read outside the
/// transaction, then `SELECT ... FOR UPDATE` and an atomic CASE update
/// inside one; the lock protects the write but not the stale guard. The
/// cart recomputes its total after the second read (multiple validations).
pub struct Magento;

impl Magento {
    /// Figure 7 verbatim: guard outside, locked decrement inside.
    fn decrement_stock(&self, conn: &mut dyn SqlConn, product: i64, qty: i64) -> AppResult<()> {
        let stock = query_i64(
            conn,
            &format!("SELECT stock FROM products WHERE id = {product}"),
        )?;
        if stock < qty {
            return Err(AppError::Rejected(format!(
                "product {product} out of stock"
            )));
        }
        conn.exec("START TRANSACTION")?;
        conn.exec(&format!(
            "SELECT stock FROM products WHERE id = {product} FOR UPDATE"
        ))?;
        conn.exec(&format!(
            "UPDATE products SET stock = CASE id WHEN {product} THEN stock - {qty} ELSE stock \
             END WHERE id IN ({product})"
        ))?;
        conn.exec("COMMIT")?;
        Ok(())
    }
}

impl ShopApp for Magento {
    fn name(&self) -> &'static str {
        "Magento"
    }

    fn language(&self) -> Language {
        Language::Php
    }

    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        cart_insert(conn, cart, product, qty)
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        let total = read_cart_total(conn, cart)?;
        if total == 0 {
            return Err(AppError::Rejected("empty cart".into()));
        }
        let order = insert_order(conn, cart, total)?;
        // Second read of the cart for the line items...
        let lines = read_cart(conn, cart)?;
        insert_order_items(conn, order, &lines)?;
        // ...followed by a revalidation that recomputes the total from the
        // same read (the anomaly stays triggerable but benign, §4.2.5).
        let recomputed: i64 = lines.iter().map(|(_, q, p)| q * p).sum();
        if recomputed != total {
            conn.exec(&format!(
                "UPDATE orders SET total = {recomputed} WHERE id = {order}"
            ))?;
        }
        for (product, qty, _) in &lines {
            self.decrement_stock(conn, *product, *qty)?;
        }
        if req.voucher_code.is_some() {
            voucher_lu_scope(conn, order)?;
        }
        clear_cart(conn, cart)?;
        mark_order_placed(conn, order)?;
        Ok(order)
    }
}

/// WooCommerce: WordPress plugin; same shapes as PrestaShop (single cart
/// read, counter-style voucher, guarded blind stock write).
pub struct WooCommerce;

impl ShopApp for WooCommerce {
    fn name(&self) -> &'static str {
        "WooCommerce"
    }

    fn language(&self) -> Language {
        Language::Php
    }

    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        cart_insert(conn, cart, product, qty)
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        let lines = read_cart(conn, cart)?;
        if lines.is_empty() {
            return Err(AppError::Rejected("empty cart".into()));
        }
        let total: i64 = lines.iter().map(|(_, q, p)| q * p).sum();
        let order = insert_order(conn, cart, total)?;
        insert_order_items(conn, order, &lines)?;
        if req.voucher_code.is_some() {
            voucher_lu_scope(conn, order)?;
        }
        inventory_lu_scope(conn, &lines)?;
        clear_cart(conn, cart)?;
        mark_order_placed(conn, order)?;
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acidrain_db::IsolationLevel;

    fn run_serial(app: &dyn ShopApp) {
        let db = app.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        app.add_to_cart(&mut conn, 1, PEN, 2).unwrap();
        app.add_to_cart(&mut conn, 1, LAPTOP, 1).unwrap();
        let order = app
            .checkout(&mut conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            .unwrap();
        // Order total covers the cart; stock decremented; voucher used once.
        let total = query_i64(
            &mut conn,
            &format!("SELECT total FROM orders WHERE id = {order}"),
        )
        .unwrap();
        assert_eq!(total, 2 * PEN_PRICE + LAPTOP_PRICE, "{}", app.name());
        let stock = query_i64(
            &mut conn,
            &format!("SELECT stock FROM products WHERE id = {PEN}"),
        )
        .unwrap();
        assert_eq!(stock, PEN_STOCK - 2, "{}", app.name());
        let uses = query_i64(&mut conn, "SELECT used FROM vouchers WHERE id = 1")
            .unwrap()
            .max(
                query_i64(
                    &mut conn,
                    "SELECT COUNT(*) FROM voucher_applications WHERE voucher_id = 1",
                )
                .unwrap(),
            );
        assert_eq!(uses, 1, "{}", app.name());
        // A second voucher use is refused serially.
        app.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
        let err = app
            .checkout(&mut conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            .unwrap_err();
        assert!(
            matches!(err, AppError::Rejected(_)),
            "{}: {err}",
            app.name()
        );
    }

    #[test]
    fn all_php_apps_work_serially() {
        run_serial(&OpenCart);
        run_serial(&PrestaShop);
        run_serial(&Magento);
        run_serial(&WooCommerce);
    }

    #[test]
    fn out_of_stock_is_rejected_serially() {
        for app in [
            &OpenCart as &dyn ShopApp,
            &PrestaShop,
            &Magento,
            &WooCommerce,
        ] {
            let db = app.make_store(IsolationLevel::ReadCommitted);
            let mut conn = db.connect();
            app.add_to_cart(&mut conn, 1, PEN, PEN_STOCK + 1).unwrap();
            let err = app
                .checkout(&mut conn, 1, &CheckoutRequest::plain())
                .unwrap_err();
            assert!(matches!(err, AppError::Rejected(_)), "{}", app.name());
        }
    }

    #[test]
    fn empty_cart_checkout_rejected() {
        for app in [
            &OpenCart as &dyn ShopApp,
            &PrestaShop,
            &Magento,
            &WooCommerce,
        ] {
            let db = app.make_store(IsolationLevel::ReadCommitted);
            let mut conn = db.connect();
            let err = app
                .checkout(&mut conn, 1, &CheckoutRequest::plain())
                .unwrap_err();
            assert!(matches!(err, AppError::Rejected(_)), "{}", app.name());
        }
    }

    #[test]
    fn opencart_merges_cart_quantities() {
        let db = OpenCart.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        OpenCart.add_to_cart(&mut conn, 1, PEN, 2).unwrap();
        OpenCart.add_to_cart(&mut conn, 1, PEN, 3).unwrap();
        assert_eq!(
            query_i64(
                &mut conn,
                "SELECT COUNT(*) FROM cart_items WHERE cart_id = 1"
            )
            .unwrap(),
            1
        );
        assert_eq!(
            query_i64(&mut conn, "SELECT qty FROM cart_items WHERE cart_id = 1").unwrap(),
            5
        );
    }

    #[test]
    fn magento_uses_for_update_inside_txn_only() {
        let db = Magento.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        Magento.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
        Magento
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap();
        let log: Vec<String> = db.log_entries().iter().map(|e| e.sql.clone()).collect();
        let fu_pos = log
            .iter()
            .position(|s| s.contains("FOR UPDATE"))
            .expect("FOR UPDATE used");
        let begin_pos = log
            .iter()
            .position(|s| s.contains("START TRANSACTION"))
            .unwrap();
        assert!(begin_pos < fu_pos);
        // The guard read happens before the transaction begins (Fig. 7).
        let guard_pos = log
            .iter()
            .position(|s| s.starts_with("SELECT stock FROM products"))
            .unwrap();
        assert!(guard_pos < begin_pos);
    }
}
