//! Transparent retry/backoff for transient database failures.
//!
//! [`RetryConn`] wraps any [`SqlConn`] and re-issues work when the
//! database reports a transient failure ([`DbError::is_retryable`]):
//! deadlock-victim aborts, serialization failures, lock-wait timeouts,
//! dropped connections. Retries use bounded exponential backoff with
//! deterministic, seeded jitter, so a chaos run with a fixed seed replays
//! bit-for-bit.
//!
//! The [`RetryPolicy`] knob mirrors the spectrum real applications sit on
//! (the ACIDRain paper's §4.2 corpus ships all three):
//!
//! * [`RetryPolicy::NoRetry`] — surface every transient error to the
//!   caller (most of the paper's PHP corpus).
//! * [`RetryPolicy::RetryStatement`] — re-issue the failed statement when
//!   the transaction state is intact (lock waits) or when there is no
//!   surrounding transaction (autocommit); in-transaction aborts still
//!   propagate.
//! * [`RetryPolicy::RetryTxn`] — additionally replay the whole recorded
//!   transaction after an abort (the Rails/ActiveRecord deadlock-retry
//!   idiom), which is the only sound way to retry once the database has
//!   rolled the transaction back.

use std::time::Duration;

use acidrain_db::{DbError, Obs, ResultSet};
use acidrain_obs::RetryEvent;
use acidrain_sql::{parse_statement, Statement};

use crate::framework::SqlConn;

/// What a [`RetryConn`] does when the database reports a transient error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetryPolicy {
    /// Propagate every error; the wrapper only keeps statistics.
    NoRetry,
    /// Retry single statements whose failure left no partial transaction
    /// behind; propagate in-transaction aborts.
    RetryStatement,
    /// Retry statements *and* replay the recorded transaction after an
    /// abort.
    #[default]
    RetryTxn,
}

/// Retry/backoff tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryConfig {
    /// What to retry (nothing, statements, or whole transactions).
    pub policy: RetryPolicy,
    /// Retry budget per logical statement (replays count against it).
    pub max_retries: u32,
    /// First backoff step; doubled each attempt up to `max_backoff`.
    /// `Duration::ZERO` disables sleeping (deterministic tests).
    pub base_backoff: Duration,
    /// Ceiling for the doubling backoff.
    pub max_backoff: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            policy: RetryPolicy::RetryTxn,
            max_retries: 8,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            seed: 0,
        }
    }
}

impl RetryConfig {
    /// A config that never sleeps — for deterministic tests.
    pub fn no_sleep(policy: RetryPolicy, max_retries: u32) -> Self {
        RetryConfig {
            policy,
            max_retries,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            seed: 0,
        }
    }
}

/// What a [`RetryConn`] did on behalf of its caller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Single-statement re-issues (transaction state intact).
    pub statement_retries: u64,
    /// Whole-transaction replays after an abort.
    pub txn_replays: u64,
    /// Retryable errors surfaced to the caller after the budget ran out
    /// (or because the policy forbade retrying).
    pub gave_up: u64,
    /// Total time spent backing off.
    pub total_backoff: Duration,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`SqlConn`] that transparently retries transient failures.
pub struct RetryConn<C: SqlConn> {
    inner: C,
    config: RetryConfig,
    /// Statements of the currently open explicit transaction (including
    /// its `BEGIN` / `SET autocommit=0`), recorded for replay.
    txn_log: Vec<String>,
    in_txn: bool,
    /// Global jitter-draw counter (deterministic stream per seed).
    draws: u64,
    stats: RetryStats,
    /// Observability handle inherited from the wrapped connection; retry
    /// and backoff probes record here (after each decision, never before).
    obs: Obs,
}

impl<C: SqlConn> RetryConn<C> {
    /// Wrap `inner` with retry behavior per `config`.
    pub fn new(inner: C, config: RetryConfig) -> Self {
        let obs = inner.obs();
        RetryConn {
            inner,
            config,
            txn_log: Vec::new(),
            in_txn: false,
            draws: 0,
            stats: RetryStats::default(),
            obs,
        }
    }

    /// Retry activity recorded so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// The wrapper's configuration.
    pub fn config(&self) -> &RetryConfig {
        &self.config
    }

    /// Unwrap, returning the inner connection.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn reset_txn(&mut self) {
        self.in_txn = false;
        self.txn_log.clear();
    }

    /// Record a successfully executed statement in the transaction log.
    fn track(&mut self, sql: &str) {
        match parse_statement(sql) {
            Ok(Statement::Begin) | Ok(Statement::SetAutocommit(false)) => {
                self.in_txn = true;
                self.txn_log.clear();
                self.txn_log.push(sql.to_string());
            }
            Ok(Statement::Commit)
            | Ok(Statement::Rollback)
            | Ok(Statement::SetAutocommit(true)) => {
                self.reset_txn();
            }
            _ => {
                if self.in_txn {
                    self.txn_log.push(sql.to_string());
                }
            }
        }
    }

    /// Exponential backoff with deterministic jitter: step `attempt` waits
    /// `base * 2^(attempt-1)` (capped) scaled by a seeded factor in
    /// `[0.5, 1.0)`.
    fn backoff(&mut self, attempt: u32) {
        if self.config.base_backoff.is_zero() {
            return;
        }
        let exp = self
            .config
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.config.max_backoff);
        let roll = splitmix64(self.config.seed ^ self.draws.wrapping_mul(0x9E37)) >> 11;
        self.draws += 1;
        let jitter = 0.5 + 0.5 * (roll as f64 / (1u64 << 53) as f64);
        let delay = exp.mul_f64(jitter);
        self.stats.total_backoff += delay;
        self.obs.backoff(self.inner.session(), delay);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// Re-execute the recorded transaction prefix after an abort. On a
    /// retryable failure mid-replay the partial transaction is rolled
    /// back and `Ok(false)` returned so the caller can back off and try
    /// again; non-retryable errors propagate.
    fn replay_txn(&mut self) -> Result<bool, DbError> {
        let statements: Vec<String> = self.txn_log.clone();
        for sql in &statements {
            match self.inner.exec(sql) {
                Ok(_) => {}
                Err(e) if e.is_retryable() => {
                    if !e.aborts_transaction() {
                        // Partial transaction still open: clear it before
                        // the next replay starts from BEGIN.
                        let _ = self.inner.exec("ROLLBACK");
                    }
                    return Ok(false);
                }
                Err(e) => {
                    self.reset_txn();
                    return Err(e);
                }
            }
        }
        Ok(true)
    }
}

impl<C: SqlConn> SqlConn for RetryConn<C> {
    fn exec(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        let session = self.inner.session();
        let mut attempts = 0u32;
        loop {
            let err = match self.inner.exec(sql) {
                Ok(rs) => {
                    self.track(sql);
                    return Ok(rs);
                }
                Err(e) => e,
            };
            let aborted = err.aborts_transaction();
            let policy = self.config.policy;
            let retryable = err.is_retryable()
                && match policy {
                    RetryPolicy::NoRetry => false,
                    // Statement retry is only sound when no transaction
                    // state was lost with the failure.
                    RetryPolicy::RetryStatement => !(aborted && self.in_txn),
                    RetryPolicy::RetryTxn => true,
                };
            if !retryable || attempts >= self.config.max_retries {
                if aborted {
                    self.reset_txn();
                }
                if err.is_retryable() {
                    self.stats.gave_up += 1;
                    self.obs.retry(session, RetryEvent::GaveUp);
                }
                return Err(err);
            }

            attempts += 1;
            self.backoff(attempts);

            if aborted && self.in_txn {
                // Replay the recorded transaction, then fall through to
                // re-issue the failed statement.
                loop {
                    match self.replay_txn() {
                        Ok(true) => {
                            self.stats.txn_replays += 1;
                            self.obs.retry(session, RetryEvent::TxnReplay);
                            break;
                        }
                        Ok(false) => {
                            if attempts >= self.config.max_retries {
                                self.reset_txn();
                                self.stats.gave_up += 1;
                                self.obs.retry(session, RetryEvent::GaveUp);
                                return Err(err);
                            }
                            attempts += 1;
                            self.backoff(attempts);
                        }
                        Err(fatal) => return Err(fatal),
                    }
                }
            } else {
                self.stats.statement_retries += 1;
                self.obs.retry(session, RetryEvent::Statement);
            }
        }
    }

    fn set_api(&mut self, name: &str, invocation: u64) {
        self.inner.set_api(name, invocation);
    }

    fn session(&self) -> u64 {
        self.inner.session()
    }

    fn obs(&self) -> Obs {
        self.obs.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acidrain_db::{Database, FaultConfig, IsolationLevel, Value};
    use acidrain_sql::schema::{ColumnDef, ColumnType, Schema, TableSchema};

    fn counter_db() -> std::sync::Arc<Database> {
        let schema = Schema::new().with_table(TableSchema::new(
            "t",
            vec![ColumnDef::new("v", ColumnType::Int)],
        ));
        let db = Database::new(schema, IsolationLevel::ReadCommitted);
        db.seed("t", vec![vec![Value::Int(0)]]).unwrap();
        db
    }

    #[test]
    fn no_faults_means_no_retries() {
        let db = counter_db();
        let mut conn = RetryConn::new(db.connect(), RetryConfig::default());
        for _ in 0..5 {
            conn.exec("BEGIN").unwrap();
            conn.exec("UPDATE t SET v = v + 1").unwrap();
            conn.exec("COMMIT").unwrap();
        }
        assert_eq!(conn.stats(), RetryStats::default());
        assert_eq!(db.table_rows("t").unwrap()[0][0], Value::Int(5));
    }

    #[test]
    fn txn_replay_converges_under_heavy_aborts() {
        let db = counter_db();
        db.enable_faults(FaultConfig::seeded(21).with_deadlock(0.3));
        let mut conn = RetryConn::new(
            db.connect(),
            RetryConfig::no_sleep(RetryPolicy::RetryTxn, 40),
        );
        for _ in 0..50 {
            conn.exec("BEGIN").unwrap();
            conn.exec("UPDATE t SET v = v + 1").unwrap();
            conn.exec("COMMIT").unwrap();
        }
        assert_eq!(
            db.table_rows("t").unwrap()[0][0],
            Value::Int(50),
            "every transaction must eventually commit exactly once"
        );
        assert!(conn.stats().txn_replays > 0, "{:?}", conn.stats());
        assert_eq!(db.active_transactions(), 0);
        assert_eq!(db.locked_resources(), 0);
    }

    #[test]
    fn no_retry_policy_surfaces_aborts() {
        let db = counter_db();
        db.enable_faults(FaultConfig::seeded(3).with_deadlock(1.0));
        let mut conn = RetryConn::new(db.connect(), RetryConfig::no_sleep(RetryPolicy::NoRetry, 8));
        conn.exec("BEGIN").unwrap();
        let err = conn.exec("UPDATE t SET v = 1").unwrap_err();
        assert_eq!(err, DbError::Deadlock);
        assert_eq!(conn.stats().gave_up, 1);
        assert_eq!(conn.stats().txn_replays, 0);
    }

    #[test]
    fn statement_policy_propagates_in_txn_aborts_but_retries_autocommit() {
        let db = counter_db();
        db.enable_faults(FaultConfig::seeded(17).with_deadlock(0.4));
        let mut conn = RetryConn::new(
            db.connect(),
            RetryConfig::no_sleep(RetryPolicy::RetryStatement, 40),
        );
        // Autocommit statements retry to completion.
        for _ in 0..20 {
            conn.exec("UPDATE t SET v = v + 1").unwrap();
        }
        assert_eq!(db.table_rows("t").unwrap()[0][0], Value::Int(20));

        // In-transaction aborts surface (replay would be unsound).
        db.enable_faults(FaultConfig::seeded(5).with_deadlock(1.0));
        conn.exec("BEGIN").unwrap(); // control statements never fault
        let err = conn.exec("UPDATE t SET v = 0").unwrap_err();
        assert!(err.aborts_transaction());
        assert_eq!(conn.stats().gave_up, 1);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let db = counter_db();
        db.enable_faults(FaultConfig::seeded(9).with_deadlock(1.0));
        let mut conn = RetryConn::new(
            db.connect(),
            RetryConfig::no_sleep(RetryPolicy::RetryTxn, 6),
        );
        let err = conn.exec("UPDATE t SET v = 1").unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(conn.stats().gave_up, 1);
        assert!(conn.stats().statement_retries <= 6);
        assert_eq!(db.table_rows("t").unwrap()[0][0], Value::Int(0));
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mk = |seed| RetryConfig {
            policy: RetryPolicy::RetryTxn,
            max_retries: 12,
            base_backoff: Duration::from_nanos(10),
            max_backoff: Duration::from_nanos(300),
            seed,
        };
        let run = |seed| {
            let db = counter_db();
            db.enable_faults(FaultConfig::seeded(33).with_deadlock(0.5));
            let mut conn = RetryConn::new(db.connect(), mk(seed));
            for _ in 0..10 {
                conn.exec("UPDATE t SET v = v + 1").unwrap();
            }
            conn.stats().total_backoff
        };
        assert_eq!(run(1), run(1));
        assert!(run(1) > Duration::ZERO);
    }
}
