//! The Java/Spring applications: Broadleaf and Shopizer.
//!
//! Idioms reproduced from the paper (§4.2.5–§4.2.6): Broadleaf guards its
//! checkout with a correct in-database mutex, but the order total it
//! writes comes from a session value read *before* the mutex was taken —
//! the control-flow bug that kept its cart exploitable (the paper's
//! `yes*`). Its community edition's inventory management is inoperable
//! ("BF"), and its voucher flow is the predicate-count-then-insert shape
//! with no transactions. Shopizer writes the order total straight from a
//! request header (`yes*`), has no voucher concept, and its inventory code
//! is unreachable without a shipping-service integration ("BF").

use crate::framework::*;

fn cart_insert(conn: &mut dyn SqlConn, cart: i64, product: i64, qty: i64) -> AppResult<()> {
    conn.exec(&format!(
        "INSERT INTO cart_items (cart_id, product_id, qty) VALUES ({cart}, {product}, {qty})"
    ))?;
    Ok(())
}

/// Broadleaf Commerce.
pub struct Broadleaf;

impl ShopApp for Broadleaf {
    fn name(&self) -> &'static str {
        "Broadleaf"
    }

    fn language(&self) -> Language {
        Language::Java
    }

    fn inventory_support(&self) -> FeatureStatus {
        FeatureStatus::Broken
    }

    fn total_from_request(&self) -> bool {
        true
    }

    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        cart_insert(conn, cart, product, qty)
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        // The control-flow bug: the session's cached cart total is read
        // BEFORE the mutex is acquired...
        let session_total = read_cart_total(conn, cart)?;
        if session_total == 0 {
            return Err(AppError::Rejected("empty cart".into()));
        }

        // ...then the (correct) in-database mutex serializes checkouts...
        conn.exec("BEGIN")?;
        conn.exec("SELECT owner FROM app_locks WHERE name = 'checkout' FOR UPDATE")?;

        // ...but the order is written with the stale pre-mutex total while
        // the line items come from a fresh read inside the critical
        // section.
        let lines = read_cart(conn, cart)?;
        let order = insert_order(conn, cart, session_total)?;
        insert_order_items(conn, order, &lines)?;
        conn.exec("COMMIT")?; // releases the mutex

        // Voucher: predicate count + insert, autocommitted (phantom,
        // scope-based).
        if req.voucher_code.is_some() {
            let uses = query_i64(
                conn,
                &format!(
                    "SELECT COUNT(*) FROM voucher_applications WHERE voucher_id = {VOUCHER_ID}"
                ),
            )?;
            let limit = query_i64(
                conn,
                &format!("SELECT usage_limit FROM vouchers WHERE id = {VOUCHER_ID}"),
            )?;
            if uses >= limit {
                return Err(AppError::Rejected("voucher exhausted".into()));
            }
            conn.exec(&format!(
                "INSERT INTO voucher_applications (voucher_id, order_id) VALUES \
                 ({VOUCHER_ID}, {order})"
            ))?;
        }

        // Community-edition inventory management is inoperable: stock is
        // never decremented (paper "BF").
        clear_cart(conn, cart)?;
        mark_order_placed(conn, order)?;
        Ok(order)
    }
}

/// Shopizer.
pub struct Shopizer;

impl ShopApp for Shopizer {
    fn name(&self) -> &'static str {
        "Shopizer"
    }

    fn language(&self) -> Language {
        Language::Java
    }

    fn voucher_support(&self) -> FeatureStatus {
        FeatureStatus::NoFeature
    }

    fn inventory_support(&self) -> FeatureStatus {
        FeatureStatus::Broken
    }

    fn total_from_request(&self) -> bool {
        true
    }

    fn add_to_cart(
        &self,
        conn: &mut dyn SqlConn,
        cart: i64,
        product: i64,
        qty: i64,
    ) -> AppResult<()> {
        cart_insert(conn, cart, product, qty)
    }

    fn checkout(&self, conn: &mut dyn SqlConn, cart: i64, req: &CheckoutRequest) -> AppResult<i64> {
        if req.voucher_code.is_some() {
            return Err(AppError::Unsupported("Shopizer has no gift vouchers"));
        }
        // The order total comes from the request (a header the client
        // controls); the line items come from the database read. The
        // paper's prototype flagged this checkout because of its cart
        // reads, and the attack is triggerable concurrently (yes*).
        let lines = read_cart(conn, cart)?;
        if lines.is_empty() {
            return Err(AppError::Rejected("empty cart".into()));
        }
        let total = match req.client_total {
            Some(t) => t,
            None => read_cart_total(conn, cart)?,
        };
        let order = insert_order(conn, cart, total)?;
        insert_order_items(conn, order, &lines)?;
        // Inventory requires a shipping-service integration and is
        // unreachable in the default deployment (paper "BF").
        clear_cart(conn, cart)?;
        mark_order_placed(conn, order)?;
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acidrain_db::IsolationLevel;

    #[test]
    fn broadleaf_serial_flow_uses_mutex() {
        let db = Broadleaf.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        Broadleaf.add_to_cart(&mut conn, 1, PEN, 2).unwrap();
        let order = Broadleaf
            .checkout(&mut conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            .unwrap();
        assert_eq!(
            query_i64(
                &mut conn,
                &format!("SELECT total FROM orders WHERE id = {order}")
            )
            .unwrap(),
            2 * PEN_PRICE
        );
        let log: Vec<String> = db.log_entries().iter().map(|e| e.sql.clone()).collect();
        assert!(log
            .iter()
            .any(|s| s.contains("app_locks") && s.contains("FOR UPDATE")));
        // The stale session read happens before the mutex acquisition.
        let stale = log.iter().position(|s| s.contains("SUM")).unwrap();
        let mutex = log.iter().position(|s| s.contains("app_locks")).unwrap();
        assert!(stale < mutex);
        // Stock untouched (broken inventory).
        assert_eq!(
            query_i64(
                &mut conn,
                &format!("SELECT stock FROM products WHERE id = {PEN}")
            )
            .unwrap(),
            PEN_STOCK
        );
    }

    #[test]
    fn broadleaf_voucher_limit_serially() {
        let db = Broadleaf.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        Broadleaf.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
        Broadleaf
            .checkout(&mut conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            .unwrap();
        Broadleaf.add_to_cart(&mut conn, 1, PEN, 1).unwrap();
        let err = Broadleaf
            .checkout(&mut conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            .unwrap_err();
        assert!(matches!(err, AppError::Rejected(_)));
    }

    #[test]
    fn shopizer_trusts_client_total() {
        let db = Shopizer.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        Shopizer.add_to_cart(&mut conn, 1, LAPTOP, 1).unwrap();
        let req = CheckoutRequest {
            voucher_code: None,
            client_total: Some(1),
        };
        let order = Shopizer.checkout(&mut conn, 1, &req).unwrap();
        // The client paid 1 for a laptop — the header-total hole.
        assert_eq!(
            query_i64(
                &mut conn,
                &format!("SELECT total FROM orders WHERE id = {order}")
            )
            .unwrap(),
            1
        );
        let items_value = query_i64(
            &mut conn,
            &format!("SELECT SUM(qty * price) FROM order_items WHERE order_id = {order}"),
        )
        .unwrap();
        assert_eq!(items_value, LAPTOP_PRICE);
    }

    #[test]
    fn shopizer_server_total_when_no_header() {
        let db = Shopizer.make_store(IsolationLevel::ReadCommitted);
        let mut conn = db.connect();
        Shopizer.add_to_cart(&mut conn, 1, PEN, 4).unwrap();
        let order = Shopizer
            .checkout(&mut conn, 1, &CheckoutRequest::plain())
            .unwrap();
        assert_eq!(
            query_i64(
                &mut conn,
                &format!("SELECT total FROM orders WHERE id = {order}")
            )
            .unwrap(),
            4 * PEN_PRICE
        );
    }
}
