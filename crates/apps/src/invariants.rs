//! The three target invariants (paper §4.2.2 and Table 3), checked over
//! the committed state of a store.
//!
//! * **Inventory**: each product's stock is non-negative, and the final
//!   stock reflects the orders placed (`initial - Σ order_items.qty ==
//!   stock`).
//! * **Voucher**: each voucher's uses (counter or application rows) stay
//!   within its limit (`Σ vᵢ ≤ v_limit`).
//! * **Cart**: each order's total equals the value of its items
//!   (`Σ cᵢqᵢ = T`).

use acidrain_db::{Database, Value};

use crate::framework::{StockModel, LAPTOP, LAPTOP_STOCK, PEN, PEN_STOCK};

/// A violated invariant, with a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke (`"voucher"`, `"inventory"`, `"cart"`).
    pub invariant: &'static str,
    /// Human-readable account of the discrepancy.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} invariant violated: {}", self.invariant, self.detail)
    }
}

fn as_i64(v: &Value) -> i64 {
    v.as_i64().unwrap_or(0)
}

/// Ids of orders that completed checkout. Pending orders (failed or
/// abandoned checkouts) are not fulfilled and do not count against the
/// invariants.
fn placed_orders(db: &Database) -> Vec<i64> {
    db.table_rows("orders")
        .unwrap_or_default()
        .iter()
        .filter(|r| r[3] == Value::Str("placed".into()))
        .map(|r| as_i64(&r[0]))
        .collect()
}

/// Check the inventory invariant for the standard store fixtures.
pub fn check_inventory(db: &Database, model: StockModel) -> Result<(), Violation> {
    let initial = [(PEN, PEN_STOCK), (LAPTOP, LAPTOP_STOCK)];
    let order_items = db.table_rows("order_items").unwrap_or_default();
    let placed = placed_orders(db);
    for (product, initial_stock) in initial {
        let ordered: i64 = order_items
            .iter()
            .filter(|r| as_i64(&r[2]) == product && placed.contains(&as_i64(&r[1])))
            .map(|r| as_i64(&r[3]))
            .sum();
        let stock_now = match model {
            StockModel::Column => db
                .table_rows("products")
                .unwrap_or_default()
                .iter()
                .find(|r| as_i64(&r[0]) == product)
                .map(|r| as_i64(&r[3]))
                .unwrap_or(0),
            StockModel::Adjustments => db
                .table_rows("stock_adjustments")
                .unwrap_or_default()
                .iter()
                .filter(|r| as_i64(&r[1]) == product)
                .map(|r| as_i64(&r[2]))
                .sum(),
        };
        if stock_now < 0 {
            return Err(Violation {
                invariant: "inventory",
                detail: format!("product {product} has negative stock {stock_now}"),
            });
        }
        if initial_stock - ordered != stock_now {
            return Err(Violation {
                invariant: "inventory",
                detail: format!(
                    "product {product}: initial {initial_stock} - ordered {ordered} != \
                     stock {stock_now} (items unaccounted for)"
                ),
            });
        }
    }
    Ok(())
}

/// Check the voucher invariant: both the usage counter and the
/// applications table stay within each voucher's limit.
pub fn check_voucher(db: &Database) -> Result<(), Violation> {
    let vouchers = db.table_rows("vouchers").unwrap_or_default();
    let applications = db.table_rows("voucher_applications").unwrap_or_default();
    let placed = placed_orders(db);
    for v in &vouchers {
        let id = as_i64(&v[0]);
        let limit = as_i64(&v[3]);
        let used = as_i64(&v[4]);
        if used > limit {
            return Err(Violation {
                invariant: "voucher",
                detail: format!("voucher {id} counter shows {used} uses > limit {limit}"),
            });
        }
        let applied = applications
            .iter()
            .filter(|a| as_i64(&a[1]) == id && placed.contains(&as_i64(&a[2])))
            .count() as i64;
        if applied > limit {
            return Err(Violation {
                invariant: "voucher",
                detail: format!("voucher {id} applied {applied} times > limit {limit}"),
            });
        }
    }
    Ok(())
}

/// Check the cart invariant: every order's recorded total equals the value
/// of its recorded items.
pub fn check_cart(db: &Database) -> Result<(), Violation> {
    let orders = db.table_rows("orders").unwrap_or_default();
    let items = db.table_rows("order_items").unwrap_or_default();
    for o in orders
        .iter()
        .filter(|o| o[3] == Value::Str("placed".into()))
    {
        let id = as_i64(&o[0]);
        let total = as_i64(&o[2]);
        let items_value: i64 = items
            .iter()
            .filter(|i| as_i64(&i[1]) == id)
            .map(|i| as_i64(&i[3]) * as_i64(&i[4]))
            .sum();
        if total != items_value {
            return Err(Violation {
                invariant: "cart",
                detail: format!(
                    "order {id} charged {total} but contains items worth {items_value}"
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{seed_store, shop_schema};
    use acidrain_db::IsolationLevel;

    fn store() -> std::sync::Arc<Database> {
        let db = Database::new(shop_schema(), IsolationLevel::ReadCommitted);
        seed_store(&db);
        db
    }

    #[test]
    fn fresh_store_satisfies_all_invariants() {
        let db = store();
        check_inventory(&db, StockModel::Column).unwrap();
        check_inventory(&db, StockModel::Adjustments).unwrap();
        check_voucher(&db).unwrap();
        check_cart(&db).unwrap();
    }

    #[test]
    fn detects_negative_stock() {
        let db = store();
        let mut c = db.connect();
        c.execute("UPDATE products SET stock = -1 WHERE id = 1")
            .unwrap();
        let v = check_inventory(&db, StockModel::Column).unwrap_err();
        assert!(v.detail.contains("negative"));
    }

    #[test]
    fn detects_lost_stock_update() {
        let db = store();
        let mut c = db.connect();
        // An order for 2 pens recorded, but stock only decremented by 1.
        c.execute("INSERT INTO orders (cart_id, total, status) VALUES (1, 4, 'placed')")
            .unwrap();
        c.execute("INSERT INTO order_items (order_id, product_id, qty, price) VALUES (1, 1, 2, 2)")
            .unwrap();
        c.execute("UPDATE products SET stock = 9 WHERE id = 1")
            .unwrap();
        let v = check_inventory(&db, StockModel::Column).unwrap_err();
        assert!(v.detail.contains("unaccounted"));
    }

    #[test]
    fn detects_voucher_overspend_both_models() {
        let db = store();
        let mut c = db.connect();
        c.execute("UPDATE vouchers SET used = 2 WHERE id = 1")
            .unwrap();
        assert!(check_voucher(&db).is_err());

        let db = store();
        let mut c = db.connect();
        // Applications only count against placed orders.
        c.execute("INSERT INTO orders (cart_id, total, status) VALUES (1, 0, 'placed')")
            .unwrap();
        c.execute("INSERT INTO orders (cart_id, total, status) VALUES (2, 0, 'placed')")
            .unwrap();
        c.execute("INSERT INTO voucher_applications (voucher_id, order_id) VALUES (1, 1)")
            .unwrap();
        check_voucher(&db).unwrap();
        c.execute("INSERT INTO voucher_applications (voucher_id, order_id) VALUES (1, 2)")
            .unwrap();
        assert!(check_voucher(&db).is_err());
        // A redemption against a pending (failed) order does not count.
        let db = store();
        let mut c = db.connect();
        c.execute("INSERT INTO orders (cart_id, total, status) VALUES (1, 0, 'pending')")
            .unwrap();
        c.execute("INSERT INTO voucher_applications (voucher_id, order_id) VALUES (1, 1)")
            .unwrap();
        c.execute("INSERT INTO voucher_applications (voucher_id, order_id) VALUES (1, 1)")
            .unwrap();
        check_voucher(&db).unwrap();
    }

    #[test]
    fn detects_order_total_mismatch() {
        let db = store();
        let mut c = db.connect();
        c.execute("INSERT INTO orders (cart_id, total, status) VALUES (1, 2, 'placed')")
            .unwrap();
        c.execute(
            "INSERT INTO order_items (order_id, product_id, qty, price) VALUES (1, 2, 1, 900)",
        )
        .unwrap();
        let v = check_cart(&db).unwrap_err();
        assert!(v.detail.contains("charged 2"));
    }
}
