//! Strategy trait and combinators.

use std::marker::PhantomData;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values of one type. Unlike real proptest there is no
/// shrink tree: `gen_value` draws a fresh value from the RNG.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<R, F>(self, whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Bounded-depth recursive strategy: applies `recurse` `depth` times
    /// over the leaf strategy. `desired_size`/`expected_branch_size` are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, so strategies can be type-erased.
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice over type-erased alternatives (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].gen_value(rng)
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.gen_value(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies.

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies.
//
// Supports the subset used by the test suite: literal characters, `[...]`
// character classes with ranges, escapes, and `{m,n}` / `{n}` / `?` / `*`
// / `+` repetition.

#[derive(Debug, Clone)]
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_regex(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in regex {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in regex {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                i += 2;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in regex {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repeat lower bound"),
                        hi.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(!choices.is_empty(), "empty class in regex {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_regex(self) {
            let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tuples.

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

// ---------------------------------------------------------------------------
// Collections and Option.

/// Inclusive-exclusive element-count bounds for `collection::vec`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let n = self.size.lo + rng.below(span.max(1)) as usize;
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone)]
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.bool() {
            Some(self.0.gen_value(rng))
        } else {
            None
        }
    }
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_and_map() {
        let mut r = rng();
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..200 {
            let v = s.gen_value(&mut r);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
        let inclusive = 3usize..=3;
        assert_eq!(inclusive.gen_value(&mut r), 3);
    }

    #[test]
    fn regex_strategies_match_shape() {
        let mut r = rng();
        let ident = "[a-z][a-z0-9_]{0,8}";
        for _ in 0..200 {
            let s = ident.gen_value(&mut r);
            assert!((1..=9).contains(&s.len()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        let printable = "[ -~]{0,80}";
        for _ in 0..50 {
            let s = printable.gen_value(&mut r);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_union_covers_arms() {
        let mut r = rng();
        let s: Union<i64> = Union::new(vec![Just(1i64).boxed(), Just(2i64).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.gen_value(&mut r));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn vec_and_option_and_filter() {
        let mut r = rng();
        let s = vec((0u8..5).prop_filter("nonzero", |v| *v != 0), 1..4);
        for _ in 0..100 {
            let v = s.gen_value(&mut r);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|x| (1..5).contains(x)));
        }
        let o = of(Just(7i32));
        let mut some = 0;
        for _ in 0..100 {
            if o.gen_value(&mut r).is_some() {
                some += 1;
            }
        }
        assert!(some > 10 && some < 90);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                crate::prop_oneof![
                    (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
                    (0i64..10).prop_map(Tree::Leaf),
                ]
            });
        let mut r = rng();
        for _ in 0..50 {
            assert!(depth(&strat.gen_value(&mut r)) <= 4);
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let mut r = rng();
        let s = (1usize..4).prop_flat_map(|n| vec(Just(n), n..=n));
        for _ in 0..50 {
            let v = s.gen_value(&mut r);
            assert_eq!(v.len(), v[0]);
        }
    }
}
