//! Hermetic stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate
//! re-implements the strategy-combinator surface the test suite needs:
//! integer-range and regex-literal strategies, `Just`, `any`, tuples,
//! `prop_map`/`prop_filter`/`prop_flat_map`/`prop_recursive`,
//! `prop_oneof!`, `proptest::collection::vec`, `proptest::option::of`,
//! and the `proptest!` test macro. Generation is deterministic per test
//! name; there is no shrinking — a failing case prints its input and
//! panics, which is enough signal for a hermetic CI loop.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

pub mod option {
    pub use crate::strategy::of;
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body (panics; the runner prints the input).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// The `proptest!` test macro: each `arg in strategy` pair is generated
/// `config.cases` times and the body re-run; a panic reports the inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let ($($arg,)+) = ($($strat,)+);
                for __case in 0..__config.cases {
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::gen_value(&$arg, &mut __rng),)+
                    );
                    let __repr = format!("{:?}", ($(&$arg,)+));
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "[proptest] {} failed at case {}/{} with input {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __repr
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}
