//! Configuration and the deterministic generator behind the shim.

/// Subset of proptest's config: only `cases` matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim trades a little coverage
        // for CI wall-clock since there is no persisted failure corpus.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic xoshiro256** generator, seeded from the test name so
/// every run of a given test explores the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Seed from a test name (FNV-1a) so each test gets its own stream.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng::seed_from_u64(hash)
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)` (n > 0), via multiply-shift.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("foo");
        let mut b = TestRng::deterministic("foo");
        let mut c = TestRng::deterministic("bar");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
