//! Golden-file tests pinning the repair adviser's output — the minimal
//! fix set, the alternatives count, and the post-fix witness verdict for
//! every finding — for two representative applications at Read Committed.
//!
//! The goldens live next to the static-audit goldens they complement
//! (`crates/static/tests/golden/`), prefixed `remedy-`. Regenerate after
//! an intentional engine, detector, lattice, or renderer change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p acidrain-harness --test remedy_golden
//! ```

use std::path::PathBuf;

use acidrain_apps::endpoints::all_surfaces;
use acidrain_db::{IsolationLevel, Obs};
use acidrain_harness::advise_surface;
use acidrain_static::{render_remedy_text, RemedyReport};

/// The pinned level: the paper's weak default family representative,
/// where both lock promotions and isolation ladders are in play.
const LEVELS: [IsolationLevel; 1] = [IsolationLevel::ReadCommitted];

fn golden_path(app: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../static/tests/golden")
        .join(format!("remedy-{app}.txt"))
}

fn report_for(app: &str) -> RemedyReport {
    let surfaces = all_surfaces();
    let surface = surfaces
        .iter()
        .find(|s| s.app == app)
        .unwrap_or_else(|| panic!("no surface named {app}"));
    let advised = advise_surface(surface, &LEVELS, &Obs::new()).unwrap();
    RemedyReport {
        apps: vec![advised],
    }
}

fn check_golden(app: &str) {
    let rendered = render_remedy_text(&report_for(app));
    let path = golden_path(app);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}; run with UPDATE_GOLDEN=1 to create",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "{app}: repair adviser report drifted from {} \
         (rerun with UPDATE_GOLDEN=1 if the change is intentional)",
        path.display()
    );
}

#[test]
fn golden_remedy_flexcoin() {
    // The §2 case study: the unscoped transfer needs scoping before any
    // lock helps; the guarded withdraw needs nothing.
    check_golden("flexcoin");
}

#[test]
fn golden_remedy_prestashop() {
    // A PHP corpus app whose endpoints are scope-repairable: exercises
    // the Scope tier plus FOR UPDATE / isolation escalation on top.
    check_golden("PrestaShop");
}
