//! Golden-file tests pinning the witness-replay verdicts — every static
//! finding's confirmed/blocked/inconclusive classification against the
//! live engine — for three representative applications at Read Committed
//! and Serializable.
//!
//! The goldens live next to the static-audit goldens they complement
//! (`crates/static/tests/golden/`), prefixed `replay-`. Regenerate after
//! an intentional engine, detector, or renderer change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p acidrain-harness --test replay_golden
//! ```

use std::path::PathBuf;

use acidrain_apps::endpoints::all_surfaces;
use acidrain_db::IsolationLevel;
use acidrain_harness::replay_surface;
use acidrain_static::{render_replay_text, ReplayReport};

/// The pinned levels: the paper's weak default family representative and
/// the strongest level (where only scope-based anomalies can confirm).
const LEVELS: [IsolationLevel; 2] = [IsolationLevel::ReadCommitted, IsolationLevel::Serializable];

fn golden_path(app: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../static/tests/golden")
        .join(format!("replay-{app}.txt"))
}

/// Replay one app at the pinned levels only, so the golden file stays
/// small and focused on the RC-vs-SER contrast.
fn report_for(app: &str) -> ReplayReport {
    let surfaces = all_surfaces();
    let surface = surfaces
        .iter()
        .find(|s| s.app == app)
        .unwrap_or_else(|| panic!("no surface named {app}"));
    let replay = replay_surface(surface, &LEVELS).unwrap();
    ReplayReport { apps: vec![replay] }
}

fn check_golden(app: &str) {
    let rendered = render_replay_text(&report_for(app));
    let path = golden_path(app);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}; run with UPDATE_GOLDEN=1 to create",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "{app}: witness replay report drifted from {} \
         (rerun with UPDATE_GOLDEN=1 if the change is intentional)",
        path.display()
    );
}

#[test]
fn golden_replay_bank_figure1a() {
    // Didactic: the unscoped Figure-1a bank — the overdraft confirms at
    // both levels because the anomaly is scope-based.
    check_golden("bank-figure1a");
}

#[test]
fn golden_replay_flexcoin() {
    // The §2 case study: the unguarded transfer confirms everywhere; the
    // FOR UPDATE-guarded withdraw is serially equivalent.
    check_golden("flexcoin");
}

#[test]
fn golden_replay_prestashop() {
    // A PHP corpus app with session locking in the refinement config.
    check_golden("PrestaShop");
}
