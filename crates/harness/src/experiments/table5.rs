//! Table 5 — the vulnerability matrix: for every application and every
//! target invariant, run the full 2AD-plus-attack pipeline and compare the
//! outcome against the paper's reported cell.

use acidrain_apps::prelude::*;
use acidrain_db::IsolationLevel;

use crate::attack::{audit_cell, CellReport, Invariant};
use crate::texttable;

/// How many witnesses to attack per cell before concluding "safe".
pub const MAX_ATTACKS_PER_CELL: usize = 60;

/// One application's audited row.
/// One application's row of Table 5 (vulnerability matrix).
#[derive(Debug)]
pub struct RowResult {
    /// Application name.
    pub name: &'static str,
    /// Implementation language of the ported application.
    pub language: Language,
    /// The voucher-invariant cell.
    pub voucher: CellReport,
    /// The inventory-invariant cell.
    pub inventory: CellReport,
    /// The cart-invariant cell.
    pub cart: CellReport,
}

impl RowResult {
    /// The three invariant cells in Table-3 column order.
    pub fn cells(&self) -> [&CellReport; 3] {
        [&self.voucher, &self.inventory, &self.cart]
    }

    /// Whether all three cells match the paper's Table 5 row.
    pub fn matches_paper(&self) -> bool {
        let Some(expected) = expected_row(self.name) else {
            return false;
        };
        self.voucher.cell == expected.voucher
            && self.inventory.cell == expected.inventory
            && self.cart.cell == expected.cart
    }
}

/// The full audited matrix.
/// The reproduced Table 5: per-app, per-invariant vulnerability cells.
#[derive(Debug)]
pub struct Table5Result {
    /// Rows in corpus order.
    pub rows: Vec<RowResult>,
    /// The isolation level the matrix was audited at.
    pub isolation: IsolationLevel,
}

impl Table5Result {
    /// Total number of vulnerable cells (the paper's 22).
    pub fn vulnerability_count(&self) -> usize {
        self.rows
            .iter()
            .flat_map(RowResult::cells)
            .filter(|c| c.cell.is_vulnerable())
            .count()
    }

    /// Vulnerable cells split (level-based, scope-based) — the paper's
    /// (5, 17).
    pub fn level_scope_split(&self) -> (usize, usize) {
        let cells = self.rows.iter().flat_map(RowResult::cells);
        let mut level = 0;
        let mut scope = 0;
        for c in cells {
            match c.cell.level_based() {
                Some(true) => level += 1,
                Some(false) => scope += 1,
                None => {}
            }
        }
        (level, scope)
    }

    /// Per-invariant vulnerable counts (voucher, inventory, cart) — the
    /// paper's (8, 9, 5).
    pub fn per_invariant_counts(&self) -> (usize, usize, usize) {
        let count = |f: fn(&RowResult) -> &CellReport| {
            self.rows
                .iter()
                .filter(|r| f(r).cell.is_vulnerable())
                .count()
        };
        (
            count(|r| &r.voucher),
            count(|r| &r.inventory),
            count(|r| &r.cart),
        )
    }

    /// Whether every cell matches the paper.
    pub fn matches_paper(&self) -> bool {
        self.rows.len() == TABLE5.len() && self.rows.iter().all(RowResult::matches_paper)
    }

    /// Render in the paper's Table 5 shape.
    pub fn render(&self) -> String {
        let cell = |c: &CellReport| render_cell(c.cell);
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.language.to_string(),
                    r.name.to_string(),
                    cell(&r.voucher),
                    cell(&r.inventory),
                    cell(&r.cart),
                    if r.matches_paper() {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                ]
            })
            .collect();
        texttable::render(
            &[
                "Language",
                "Application",
                "Voucher",
                "Inventory",
                "Cart",
                "Matches paper",
            ],
            &rows,
        )
    }
}

/// Render a cell the way Table 5 does (V/AP/AT columns condensed).
pub fn render_cell(cell: Cell) -> String {
    match cell {
        Cell::Vuln {
            lost_update,
            level_based,
        } => format!(
            "yes {} {}",
            if lost_update { "LU" } else { "phantom" },
            if level_based { "level" } else { "scope" }
        ),
        Cell::VulnStarred {
            lost_update,
            level_based,
        } => format!(
            "yes* {} {}",
            if lost_update { "LU" } else { "phantom" },
            if level_based { "level" } else { "scope" }
        ),
        Cell::Safe => "no".into(),
        Cell::NoFeature => "NF".into(),
        Cell::Broken => "BF".into(),
        Cell::NotDbBacked => "NDB".into(),
    }
}

/// Audit the entire corpus at `isolation`.
pub fn run(isolation: IsolationLevel) -> Table5Result {
    let apps = all_apps();
    let rows = apps
        .iter()
        .map(|app| RowResult {
            name: TABLE1
                .iter()
                .find(|e| e.name == app.name())
                .map(|e| e.name)
                .unwrap_or("unknown"),
            language: app.language(),
            voucher: audit_cell(
                app.as_ref(),
                Invariant::Voucher,
                isolation,
                MAX_ATTACKS_PER_CELL,
            ),
            inventory: audit_cell(
                app.as_ref(),
                Invariant::Inventory,
                isolation,
                MAX_ATTACKS_PER_CELL,
            ),
            cart: audit_cell(
                app.as_ref(),
                Invariant::Cart,
                isolation,
                MAX_ATTACKS_PER_CELL,
            ),
        })
        .collect();
    Table5Result { rows, isolation }
}
