//! Table 1 — corpus summary. The descriptive columns (deployments, stars,
//! LoC, the paper's trace sizes) come from the paper verbatim; the last
//! column is the trace size *this* reproduction's pen-test produces.

use acidrain_apps::prelude::*;
use acidrain_db::IsolationLevel;

use crate::experiments::pentest_trace;
use crate::texttable;

/// One corpus application's row of Table 1 (corpus statistics).
#[derive(Debug)]
pub struct Table1Row {
    /// The static corpus entry (name, language, stars, LOC).
    pub entry: acidrain_apps::CorpusEntry,
    /// SQL statements logged by this reproduction's pen-test session.
    pub measured_trace_lines: usize,
}

/// The reproduced Table 1: one row per corpus application.
#[derive(Debug)]
pub struct Table1Result {
    /// Rows in corpus order.
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// Render the table as aligned plain text.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.entry.name.to_string(),
                    r.entry.language.to_string(),
                    r.entry
                        .deployments
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "-".into()),
                    r.entry.github_stars.to_string(),
                    r.entry.lines_of_code.to_string(),
                    r.entry.paper_trace_lines.to_string(),
                    r.measured_trace_lines.to_string(),
                ]
            })
            .collect();
        texttable::render(
            &[
                "App Name",
                "Language",
                "Deployments",
                "Stars",
                "LoC",
                "Paper trace",
                "Our trace",
            ],
            &rows,
        )
    }
}

/// Trace every corpus application once at `isolation` and build Table 1.
pub fn run(isolation: IsolationLevel) -> Table1Result {
    let apps = all_apps();
    let rows = apps
        .iter()
        .map(|app| {
            let entry = *TABLE1
                .iter()
                .find(|e| e.name == app.name())
                .expect("corpus entry");
            let measured_trace_lines = pentest_trace(app.as_ref(), isolation).len();
            Table1Row {
                entry,
                measured_trace_lines,
            }
        })
        .collect();
    Table1Result { rows }
}
