//! Experiment runners: one per table and figure of the paper's evaluation.

pub mod figures;
pub mod repairs;
pub mod table1;
pub mod table2;
pub mod table4;
pub mod table5;

use acidrain_apps::prelude::*;
use acidrain_db::{IsolationLevel, LogEntry};

/// The default isolation the paper's deployments ran at: MySQL/MariaDB's
/// nominal REPEATABLE READ, which behaves as Read Committed for the access
/// patterns at issue (footnote 6).
pub const PAPER_DEFAULT_ISOLATION: IsolationLevel = IsolationLevel::MySqlRepeatableRead;

/// Run the full penetration-test session the per-app analyses use: two
/// carts, voucher and plain checkouts, every endpoint exercised — the
/// §3.1.1 "add items to the store cart, provide details, place an order"
/// script.
pub fn pentest_trace(app: &dyn ShopApp, isolation: IsolationLevel) -> Vec<LogEntry> {
    app.reset_session_state();
    let db = app.make_store(isolation);
    let mut conn = db.connect();

    conn.set_api("add_to_cart", 0);
    app.add_to_cart(&mut conn, 1, PEN, 1).expect("pentest add");
    conn.set_api("add_to_cart", 1);
    app.add_to_cart(&mut conn, 1, LAPTOP, 1)
        .expect("pentest add");
    conn.set_api("checkout", 0);
    let req = if app.voucher_support() == FeatureStatus::Supported {
        CheckoutRequest::with_voucher(VOUCHER_CODE)
    } else {
        CheckoutRequest::plain()
    };
    app.checkout(&mut conn, 1, &req).expect("pentest checkout");

    // A second cart exercising the plain checkout path.
    conn.set_api("add_to_cart", 2);
    app.add_to_cart(&mut conn, 2, PEN, 2).expect("pentest add");
    conn.set_api("checkout", 1);
    app.checkout(&mut conn, 2, &CheckoutRequest::plain())
        .expect("pentest checkout");

    drop(conn);
    db.log_entries()
}
