//! Table 4 — abstract-history sizes and 2AD runtimes per application, plus
//! the §4.2.3 targeted-vs-full filtering comparison.

use std::time::Duration;

use acidrain_apps::prelude::*;
use acidrain_core::{Analyzer, RefinementConfig};
use acidrain_db::IsolationLevel;

use crate::attack::Invariant;
use crate::experiments::pentest_trace;
use crate::texttable;

/// One application's row of Table 4 (2AD analysis statistics).
#[derive(Debug)]
pub struct Table4Row {
    /// Application name.
    pub name: &'static str,
    /// Operation nodes in the lifted history.
    pub operation_nodes: usize,
    /// Transaction nodes in the lifted history.
    pub txn_nodes: usize,
    /// Transactions the application opened explicitly (`BEGIN`).
    pub explicit_txns: usize,
    /// Distinct API invocation groups.
    pub api_nodes: usize,
    /// Dependency edges in the abstract anomaly graph.
    pub edges: usize,
    /// Time spent parsing the trace into a history.
    pub parse_time: Duration,
    /// Time spent running the 2AD analysis proper.
    pub analyze_time: Duration,
    /// Witness pairs reported by the unfiltered analysis.
    pub findings_unfiltered: usize,
    /// Witness pairs after restricting to the three invariants' columns.
    pub findings_filtered: usize,
}

/// The reproduced Table 4: analysis statistics per application.
#[derive(Debug)]
pub struct Table4Result {
    /// Rows in corpus order.
    pub rows: Vec<Table4Row>,
}

impl Table4Result {
    /// Render the table as aligned plain text.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    r.operation_nodes.to_string(),
                    r.txn_nodes.to_string(),
                    r.explicit_txns.to_string(),
                    r.api_nodes.to_string(),
                    r.edges.to_string(),
                    format!("{:.3}ms", r.parse_time.as_secs_f64() * 1e3),
                    format!("{:.3}ms", r.analyze_time.as_secs_f64() * 1e3),
                    r.findings_unfiltered.to_string(),
                    r.findings_filtered.to_string(),
                ]
            })
            .collect();
        texttable::render(
            &[
                "App Name",
                "Op Nodes",
                "Txn Nodes",
                "Explicit Txns",
                "API Nodes",
                "Edges",
                "Parse",
                "Analyze",
                "Unfiltered",
                "Filtered",
            ],
            &rows,
        )
    }

    /// The paper's headline: the tool completes in well under ten seconds
    /// per application.
    pub fn all_under_ten_seconds(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.parse_time + r.analyze_time < Duration::from_secs(10))
    }

    /// Median unfiltered and filtered witness counts (§4.2.3 reports a
    /// median of 726 before filtering, 37 after, on the paper's traces).
    pub fn median_findings(&self) -> (usize, usize) {
        let median = |mut v: Vec<usize>| -> usize {
            v.sort_unstable();
            v[v.len() / 2]
        };
        (
            median(self.rows.iter().map(|r| r.findings_unfiltered).collect()),
            median(self.rows.iter().map(|r| r.findings_filtered).collect()),
        )
    }
}

/// Trace and analyze every corpus application at `isolation`, building
/// Table 4.
pub fn run(isolation: IsolationLevel) -> Table4Result {
    let apps = all_apps();
    let config = RefinementConfig::at_isolation(isolation);
    let mut targets = Vec::new();
    for invariant in Invariant::ALL {
        targets.extend(invariant.targets());
    }
    let rows = apps
        .iter()
        .map(|app| {
            let log = pentest_trace(app.as_ref(), isolation);
            let analyzer = Analyzer::from_log(&log, &app.schema()).expect("pentest lifts");
            let full = analyzer.analyze(&config);
            let filtered = analyzer.analyze_targeted(&config, &targets);
            let stats = full.stats;
            Table4Row {
                name: TABLE1.iter().find(|e| e.name == app.name()).unwrap().name,
                operation_nodes: stats.operation_nodes,
                txn_nodes: stats.txn_nodes,
                explicit_txns: stats.explicit_txns,
                api_nodes: stats.api_nodes,
                edges: stats.edges,
                parse_time: full.parse_time,
                analyze_time: full.analyze_time + filtered.analyze_time,
                findings_unfiltered: full.finding_count(),
                findings_filtered: filtered.finding_count(),
            }
        })
        .collect();
    Table4Result { rows }
}
