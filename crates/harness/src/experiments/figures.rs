//! Figures 1, 3, 4, 5, and 9 — the paper's worked examples, regenerated.

use acidrain_apps::didactic::{
    add_employee, make_minishop, make_payroll, minishop_add_to_cart, minishop_checkout,
    payroll_schema, raise_salary, Bank,
};
use acidrain_apps::SqlConn;
use acidrain_core::{Analyzer, AnomalyScope, Finding, RefinementConfig, WitnessTrace};
use acidrain_db::{IsolationLevel, LogEntry, Value};

use crate::sched::{run_deterministic, Stepper};

/// Figure 1: two concurrent `withdraw(99)` calls against a balance of 100.
/// Returns (final balance, successful withdrawals). Under the vulnerable
/// code paths the account overdraws: two successes against one balance.
pub fn figure1_withdraw(bank: &Bank, isolation: IsolationLevel) -> (i64, usize) {
    let db = bank.make_bank(isolation, 100);
    let withdraw = |conn: &mut dyn SqlConn| bank.withdraw(conn, 1, 99).is_ok();
    let results = run_deterministic(&db, vec![withdraw, withdraw], |s: &mut Stepper| {
        // Both read the balance before either writes.
        let reads = if bank.use_transaction { 2 } else { 1 };
        s.run_statements(0, reads);
        s.run_statements(1, reads);
    });
    let balance = db.table_rows("accounts").unwrap()[0][1].as_i64().unwrap();
    (balance, results.iter().filter(|ok| **ok).count())
}

/// Figure 3b: the payroll SQL log from running `add_employee` then
/// `raise_salary` serially.
pub fn figure3_log() -> Vec<LogEntry> {
    let db = make_payroll(IsolationLevel::MySqlRepeatableRead);
    let mut conn = db.connect();
    conn.set_api("add_employee", 0);
    add_employee(&mut conn, "John", "Doe", 50000).expect("add employee");
    conn.set_api("raise_salary", 0);
    raise_salary(&mut conn, 1000).expect("raise salary");
    drop(conn);
    db.log_entries()
}

/// Figure 4: the abstract history lifted from the Figure 3 log.
pub fn figure4_analyzer() -> Analyzer {
    Analyzer::from_log(&figure3_log(), &payroll_schema()).expect("payroll log lifts")
}

/// Figure 5: the witness for the scope-based anomaly between the blanket
/// salary update (op 5) and the employee count (op 7) in `raise_salary`,
/// rendered as a concrete schedule.
pub fn figure5_witness() -> (Finding, WitnessTrace) {
    let analyzer = figure4_analyzer();
    let report = analyzer.analyze(&RefinementConfig::none());
    let finding = report
        .findings
        .iter()
        .find(|f| {
            f.api == "raise_salary"
                && f.scope == AnomalyScope::ScopeBased
                && analyzer
                    .history()
                    .op(f.witness.o1)
                    .sql
                    .contains("UPDATE employees")
                && analyzer.history().op(f.witness.o2).sql.contains("COUNT")
        })
        .expect("the Figure 5 anomaly is detected")
        .clone();
    let trace = analyzer.witness_trace(&finding);
    (finding, trace)
}

/// Execute the Figure 5 schedule for real: an employee added concurrently
/// with a raise is counted in the raised total but paid no raise. Returns
/// (expected total from actual salaries, recorded total).
pub fn figure5_attack() -> (i64, i64) {
    let db = make_payroll(IsolationLevel::MySqlRepeatableRead);
    run_deterministic(
        &db,
        vec![
            Box::new(|conn: &mut dyn SqlConn| raise_salary(conn, 1000).is_ok())
                as Box<dyn FnOnce(&mut dyn SqlConn) -> bool + Send>,
            Box::new(|conn: &mut dyn SqlConn| add_employee(conn, "John", "Doe", 0).is_ok()),
        ],
        |s: &mut Stepper| {
            // raise_salary executes its blanket UPDATE (statement 1)...
            s.run_statements(0, 1);
            // ...then add_employee runs in full...
            s.run_to_completion(1);
            // ...and raise_salary counts three employees for the total.
        },
    );
    let employees = db.table_rows("employees").unwrap();
    let actual_raise_cost: i64 = employees
        .iter()
        .map(|r| {
            r[2].as_i64().unwrap()
                - if r[0] == Value::Str("John".into()) {
                    0
                } else {
                    50000
                }
        })
        .sum();
    let recorded_total = db.table_rows("salary").unwrap()[0][0].as_i64().unwrap();
    // Baseline total was 100000.
    (100000 + actual_raise_cost, recorded_total)
}

/// Figure 9: the abstract history of the simplified shop.
pub fn figure9_analyzer() -> Analyzer {
    let db = make_minishop(IsolationLevel::MySqlRepeatableRead);
    let mut conn = db.connect();
    conn.set_api("add_to_cart", 0);
    minishop_add_to_cart(&mut conn, 14, 1, 2).expect("add");
    conn.set_api("checkout", 0);
    minishop_checkout(&mut conn, 14).expect("checkout");
    drop(conn);
    let log = db.log_entries();
    Analyzer::from_log(&log, &acidrain_apps::didactic::minishop_schema()).expect("lifts")
}

#[cfg(test)]
mod tests {
    use super::*;
    use acidrain_apps::didactic::Bank;
    use acidrain_core::AnomalyPattern;

    #[test]
    fn figure1a_overdraws_at_any_level() {
        let (balance, successes) =
            figure1_withdraw(&Bank::figure_1a(), IsolationLevel::Serializable);
        // Scope-based: even serializable statements cannot save unscoped
        // code — $198 withdrawn from $100.
        assert_eq!(successes, 2);
        assert_eq!(balance, 1);
    }

    #[test]
    fn figure1b_overdraws_below_snapshot_isolation() {
        let (balance, successes) =
            figure1_withdraw(&Bank::figure_1b(), IsolationLevel::ReadCommitted);
        assert_eq!(successes, 2, "Read Committed admits the Lost Update");
        assert_eq!(balance, 1);
        // Snapshot Isolation's first-committer-wins stops it.
        let (balance, successes) =
            figure1_withdraw(&Bank::figure_1b(), IsolationLevel::SnapshotIsolation);
        assert_eq!(successes, 1, "{balance}");
        assert_eq!(balance, 1);
    }

    #[test]
    fn figure1_fixed_by_select_for_update() {
        let (balance, successes) = figure1_withdraw(&Bank::fixed(), IsolationLevel::ReadCommitted);
        assert_eq!(successes, 1);
        assert_eq!(balance, 1);
    }

    #[test]
    fn figure4_has_five_operations_two_apis() {
        let analyzer = figure4_analyzer();
        let stats = analyzer.history().stats();
        assert_eq!(stats.operation_nodes, 5);
        assert_eq!(stats.api_nodes, 2);
        assert_eq!(stats.txn_nodes, 3);
        assert_eq!(stats.explicit_txns, 2);
    }

    #[test]
    fn figure5_witness_shape() {
        let (finding, trace) = figure5_witness();
        assert_eq!(finding.pattern, AnomalyPattern::Phantom);
        let text = trace.to_string();
        // The witness interleaves add_employee inside raise_salary, with
        // the seed pair starred (Figure 5's asterisks).
        assert!(text.contains("a2"), "{text}");
        assert_eq!(trace.steps.iter().filter(|s| s.seed_marker).count(), 2);
        assert!(trace.steps.iter().any(|s| s.api == "add_employee"));
    }

    #[test]
    fn figure5_attack_corrupts_salary_total() {
        let (expected_total, recorded_total) = figure5_attack();
        // John was counted in the raise total but received no raise.
        assert_eq!(recorded_total - 100000, 3000, "three employees counted");
        assert_eq!(expected_total - 100000, 2000, "only two raises paid");
        assert_ne!(expected_total, recorded_total);
    }

    #[test]
    fn figure9_contains_both_cycles() {
        let analyzer = figure9_analyzer();
        let report = analyzer.analyze(&RefinementConfig::none());
        // The cart cycle (checkout's two cart reads vs add_to_cart's
        // write) and the inventory self-loop cycle both appear.
        assert!(report
            .findings
            .iter()
            .any(|f| f.api == "checkout" && f.table == "cart_items"));
        assert!(report
            .findings
            .iter()
            .any(|f| f.api == "checkout" && f.table == "stock"));
    }
}
