//! Table 2 — which popular engines' isolation levels expose the anomalies:
//! the full audit re-run at each database profile's default and maximum
//! isolation level. The paper's shape: 5 level-based anomalies observable
//! at every default (effectively Read Committed); 0 remain under
//! Serializable (MySQL, Postgres), 1 under Snapshot Isolation (Oracle, SAP
//! HANA); the 17 scope-based vulnerabilities survive everything.

use acidrain_db::{DatabaseProfile, IsolationLevel, PAPER_DATABASES};

use crate::experiments::table5;
use crate::texttable;

/// One database profile's row of Table 2 (default/maximum isolation).
#[derive(Debug)]
pub struct Table2Row {
    /// The profiled database system.
    pub profile: DatabaseProfile,
    /// Level-based anomalies observable at the default level.
    pub level_based_at_default: usize,
    /// Level-based anomalies observable at the maximum level.
    pub level_based_at_max: usize,
    /// Scope-based vulnerabilities remaining regardless of level.
    pub remaining_scope_based: usize,
}

/// The reproduced Table 2: isolation defaults across database systems.
#[derive(Debug)]
pub struct Table2Result {
    /// Rows in profile order.
    pub rows: Vec<Table2Row>,
}

impl Table2Result {
    /// Render the table as aligned plain text.
    pub fn render(&self) -> String {
        let level_name = |l: IsolationLevel| match l {
            IsolationLevel::ReadCommitted | IsolationLevel::MySqlRepeatableRead => "RC",
            IsolationLevel::SnapshotIsolation => "SI",
            IsolationLevel::Serializable => "S",
            IsolationLevel::RepeatableRead => "RR",
            IsolationLevel::ReadUncommitted => "RU",
        };
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.profile.name.to_string(),
                    format!(
                        "{} ({})",
                        r.level_based_at_default,
                        level_name(r.profile.default_level)
                    ),
                    format!(
                        "{} ({})",
                        r.level_based_at_max,
                        level_name(r.profile.maximum_level)
                    ),
                    r.remaining_scope_based.to_string(),
                ]
            })
            .collect();
        texttable::render(
            &[
                "Database",
                "Default Isolation",
                "Maximum Isolation",
                "Remaining",
            ],
            &rows,
        )
    }
}

/// Audit the corpus at one isolation level and split the vulnerable cells.
fn split_at(level: IsolationLevel) -> (usize, usize) {
    table5::run(level).level_scope_split()
}

/// Probe every database profile's isolation envelope and build Table 2.
pub fn run() -> Table2Result {
    // Levels repeat across profiles; cache the expensive audits.
    let mut cache: Vec<(IsolationLevel, (usize, usize))> = Vec::new();
    let mut split_cached = |level: IsolationLevel| -> (usize, usize) {
        if let Some((_, s)) = cache.iter().find(|(l, _)| *l == level) {
            return *s;
        }
        let s = split_at(level);
        cache.push((level, s));
        s
    };

    let rows = PAPER_DATABASES
        .iter()
        .map(|profile| {
            let (level_default, scope_default) = split_cached(profile.default_level);
            let (level_max, _) = split_cached(profile.maximum_level);
            Table2Row {
                profile: *profile,
                level_based_at_default: level_default,
                level_based_at_max: level_max,
                remaining_scope_based: scope_default,
            }
        })
        .collect();
    Table2Result { rows }
}
