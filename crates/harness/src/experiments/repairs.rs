//! The §4.2.7 remediation experiment: apply the paper's proposed fixes to
//! the vulnerable applications and re-run the attacks.
//!
//! The paper's claims, verified here per cell:
//!
//! * transaction scoping alone converts scope-based anomalies into
//!   level-based ones — Lost Updates still manifest at Read Committed;
//! * scoping **plus** serializable isolation eliminates every anomaly
//!   ("the correctly-scoped application transactions would exhibit
//!   serializable behavior", §4.2.1).

use acidrain_apps::prelude::*;
use acidrain_apps::repair::{can_repair, Repair, Repaired};
use acidrain_db::IsolationLevel;

use crate::attack::{audit_cell, Invariant};
use crate::experiments::PAPER_DEFAULT_ISOLATION;
use crate::texttable;

/// One application × invariant row of the remediation table.
#[derive(Debug)]
pub struct RepairRow {
    /// Application name.
    pub app: &'static str,
    /// The invariant under repair.
    pub invariant: Invariant,
    /// The unrepaired cell at the default isolation level.
    pub original: Cell,
    /// After wrapping each endpoint in one transaction, still at the
    /// default isolation level.
    pub scoped: Cell,
    /// After scoping plus serializable isolation.
    pub scoped_serializable: Cell,
}

/// The remediation experiment: every vulnerable cell, repaired twice.
#[derive(Debug)]
pub struct RepairResult {
    /// One row per app × invariant combination.
    pub rows: Vec<RepairRow>,
}

impl RepairResult {
    /// Render the table as aligned plain text.
    pub fn render(&self) -> String {
        let cell = |c: Cell| crate::experiments::table5::render_cell(c);
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.app.to_string(),
                    r.invariant.to_string(),
                    cell(r.original),
                    cell(r.scoped),
                    cell(r.scoped_serializable),
                ]
            })
            .collect();
        texttable::render(
            &[
                "Application",
                "Invariant",
                "Original",
                "+scoping",
                "+scoping+serializable",
            ],
            &rows,
        )
    }

    /// The §4.2.7 end state: no vulnerabilities survive the full repair.
    pub fn full_repair_is_complete(&self) -> bool {
        self.rows
            .iter()
            .all(|r| !r.scoped_serializable.is_vulnerable())
    }
}

/// Run the remediation experiment over every repairable vulnerable app.
pub fn run() -> RepairResult {
    let apps = all_apps();
    let mut rows = Vec::new();
    for app in &apps {
        if !can_repair(app.as_ref()) {
            continue;
        }
        for invariant in Invariant::ALL {
            if invariant.feature(app.as_ref()) != FeatureStatus::Supported {
                continue;
            }
            let original = audit_cell(app.as_ref(), invariant, PAPER_DEFAULT_ISOLATION, 60).cell;
            if !original.is_vulnerable() {
                continue;
            }
            let scoped_app = Repaired::new(app.as_ref(), Repair::TransactionScoping);
            let scoped = audit_cell(&scoped_app, invariant, PAPER_DEFAULT_ISOLATION, 60).cell;
            let full_app = Repaired::new(app.as_ref(), Repair::ScopingAndSerializable);
            let scoped_serializable =
                audit_cell(&full_app, invariant, IsolationLevel::Serializable, 60).cell;
            rows.push(RepairRow {
                app: TABLE1.iter().find(|e| e.name == app.name()).unwrap().name,
                invariant,
                original,
                scoped,
                scoped_serializable,
            });
        }
    }
    RepairResult { rows }
}
