//! Deterministic chaos runs: a seeded storefront workload executed
//! against a fault-injecting store through retrying connections, with a
//! fully reproducible report.
//!
//! Everything downstream of the seed is deterministic — the request
//! interleaving (a seeded shuffle that preserves per-session order), the
//! injected faults (the injector's decisions are pure hashes of
//! `(seed, session, statement#)`), and the retry behavior — so two runs
//! with the same [`ChaosConfig`] produce bit-for-bit identical reports:
//! same fault counts, same final committed state digest, same 2AD witness
//! set. That property is what makes fault-injection campaigns debuggable:
//! any surprising report can be replayed exactly.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use acidrain_apps::prelude::*;
use acidrain_apps::{observed_request, AppError, RetryConfig, RetryConn, RetryPolicy, RetryStats};
use acidrain_core::{Analyzer, RefinementConfig};
use acidrain_db::{
    Database, DbError, FaultConfig, FaultStats, IsolationLevel, MetricsReport, RecoveryInfo,
    StmtOutcome, WalConfig,
};
use rand::prelude::*;

use crate::attack::Invariant;

/// Configuration for one chaos run. Every source of nondeterminism is
/// derived from `seed`.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed: drives the interleaving shuffle, the fault injector,
    /// and the retry jitter.
    pub seed: u64,
    /// Fault channels to enable on the store (its `seed` field is
    /// overridden by the master seed).
    pub faults: FaultConfig,
    /// Client-side retry policy.
    pub policy: RetryPolicy,
    /// Retry budget per request.
    pub max_retries: u32,
    /// Number of concurrent shopper sessions (each gets its own cart and
    /// retrying connection).
    pub sessions: usize,
    /// Script length per session.
    pub requests_per_session: usize,
    /// Isolation level of the chaos store.
    pub isolation: IsolationLevel,
    /// Record engine metrics during the run. Observational only: every
    /// probe fires after the engine's deterministic decisions, so a seeded
    /// run produces a bit-for-bit identical [`ChaosReport`] whether this
    /// is on or off (the observability test suite pins this down).
    pub metrics: bool,
    /// Route point lookups through the store's equality indexes (the
    /// engine default). Indexes are maintained either way; this gates only
    /// the read path, and index candidates are probed in the same
    /// ascending slot order a full scan visits — so a seeded run produces
    /// a bit-for-bit identical [`ChaosReport`] whether this is on or off
    /// (the engine invariance suite pins this down).
    pub use_indexes: bool,
    /// Route range predicates (`qty < k`, `BETWEEN`) through the store's
    /// ordered indexes (the engine default; only effective while
    /// `use_indexes` is also on). Range candidates come back in the same
    /// ascending slot order a full scan visits, so seeded reports are
    /// bit-for-bit identical either way (pinned by the engine invariance
    /// suite, same contract as `use_indexes`).
    pub use_range_indexes: bool,
    /// Attach a write-ahead log before the workload runs. Combined with a
    /// crash point in `faults`, the run dies at a deterministic, seeded
    /// instant (the report's `crashed` flag is set and the remaining
    /// requests never execute) and the directory holds exactly what a
    /// `kill -9` would have left — ready for [`recover_app_store`].
    pub wal: Option<WalConfig>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            faults: FaultConfig::disabled(),
            policy: RetryPolicy::RetryTxn,
            max_retries: 12,
            sessions: 4,
            requests_per_session: 6,
            isolation: IsolationLevel::ReadCommitted,
            metrics: false,
            use_indexes: true,
            use_range_indexes: true,
            wal: None,
        }
    }
}

/// Everything a chaos run produced. Two runs with equal configs compare
/// equal field-for-field.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Requests that completed successfully.
    pub committed: usize,
    /// Requests the application rejected by business logic (sold out,
    /// voucher exhausted, ...).
    pub rejected: usize,
    /// Requests that failed with a database error even after retries.
    pub failed: usize,
    /// Injected-fault totals from the store's injector.
    pub fault_stats: FaultStats,
    /// Retry activity aggregated across all sessions.
    pub retry_stats: RetryStats,
    /// Per-invariant verdicts over the final committed state (only the
    /// invariants the app supports).
    pub invariant_results: Vec<(Invariant, Option<Violation>)>,
    /// 2AD witnesses found in the chaos log (which includes aborted and
    /// retried statement sequences).
    pub witnesses: usize,
    /// Log entries recording aborted attempts.
    pub aborted_log_entries: usize,
    /// FNV-1a digest of the final committed table contents.
    pub state_digest: u64,
    /// Whether an injected crash point killed the WAL mid-run (the
    /// remaining requests were skipped, as after a real `kill -9`).
    pub crashed: bool,
}

impl ChaosReport {
    /// Whether every checked invariant held.
    pub fn invariants_held(&self) -> bool {
        self.invariant_results.iter().all(|(_, v)| v.is_none())
    }
}

/// One shopper request in the workload.
pub(crate) enum Request {
    AddToCart { product: i64, qty: i64 },
    Checkout,
}

/// The per-session request script: a cart add followed by a plain
/// checkout, repeated, with pens and laptops split across sessions so the
/// shared stock rows see contention. The workload deliberately stays
/// inside the apps' serially-clean envelope — one single-line cart per
/// checkout, no vouchers — because the corpus apps (faithfully to their
/// originals) interleave writes with per-line validation and would leak
/// partial state on rejection even in a clean serial run; with this
/// script any violation in a chaos report is attributable to the run,
/// not the workload.
pub(crate) fn session_script(session: usize, len: usize) -> Vec<Request> {
    let product = if session.is_multiple_of(2) {
        PEN
    } else {
        LAPTOP
    };
    (0..len)
        .map(|i| {
            if i % 2 == 0 {
                Request::AddToCart { product, qty: 1 }
            } else {
                Request::Checkout
            }
        })
        .collect()
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// FNV-1a digest of the committed contents of every table, in schema
/// order — the engine-invariance fingerprint chaos reports carry and the
/// recovery suite compares bit-for-bit against a recovered engine.
pub fn state_digest(db: &Arc<Database>, app: &dyn ShopApp) -> u64 {
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    for table in app.schema().tables() {
        fnv1a(&mut digest, table.name.as_bytes());
        for row in db.table_rows(&table.name).unwrap_or_default() {
            for value in row {
                fnv1a(&mut digest, value.to_string().as_bytes());
                fnv1a(&mut digest, b"|");
            }
            fnv1a(&mut digest, b"\n");
        }
    }
    digest
}

/// Run the seeded chaos workload against `app` and report.
///
/// Requests execute serially in a seeded shuffled interleaving that
/// preserves per-session order — concurrency enters through transaction
/// interleaving at the statement level being irrelevant here; what the
/// chaos run exercises is the *fault path*: injected aborts, retry
/// convergence, and the audit trail they leave in the query log.
pub fn run_chaos(app: &dyn ShopApp, config: &ChaosConfig) -> ChaosReport {
    run_chaos_core(app, config, config.metrics).0
}

/// [`run_chaos`] with metrics forced on: returns the deterministic
/// [`ChaosReport`] alongside the run's [`MetricsReport`] (latency
/// histograms, fault/retry counters, contention gauges). Only the second
/// element varies run-to-run — it carries wall-clock timings.
pub fn run_chaos_instrumented(
    app: &dyn ShopApp,
    config: &ChaosConfig,
) -> (ChaosReport, MetricsReport) {
    run_chaos_core(app, config, true)
}

fn run_chaos_core(
    app: &dyn ShopApp,
    config: &ChaosConfig,
    metrics: bool,
) -> (ChaosReport, MetricsReport) {
    app.reset_session_state();
    let db = app.make_store(config.isolation);
    db.set_use_indexes(config.use_indexes);
    db.set_use_range_indexes(config.use_range_indexes);
    let mut faults = config.faults.clone();
    faults.seed = config.seed;
    db.enable_faults(faults);
    if let Some(wal_config) = &config.wal {
        db.attach_wal(wal_config.clone())
            .expect("chaos store accepts a fresh WAL");
    }
    if metrics {
        db.enable_metrics();
    }

    // One retrying connection and request script per session.
    let mut conns: Vec<RetryConn<_>> = (0..config.sessions)
        .map(|s| {
            RetryConn::new(
                db.connect(),
                RetryConfig {
                    policy: config.policy,
                    max_retries: config.max_retries,
                    base_backoff: std::time::Duration::ZERO,
                    max_backoff: std::time::Duration::ZERO,
                    seed: config.seed ^ s as u64,
                },
            )
        })
        .collect();
    let mut scripts: Vec<std::vec::IntoIter<Request>> = (0..config.sessions)
        .map(|s| session_script(s, config.requests_per_session).into_iter())
        .collect();

    // Seeded interleaving: shuffle the multiset of session slots, then
    // drain each session's script in that global order.
    let mut order: Vec<usize> = (0..config.sessions)
        .flat_map(|s| std::iter::repeat_n(s, config.requests_per_session))
        .collect();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x000C_4A05);
    order.shuffle(&mut rng);

    let mut committed = 0;
    let mut rejected = 0;
    let mut failed = 0;
    // Invocation numbers are global per API name: lifting groups log
    // entries by `name#invocation` (not by session), so per-session
    // numbering would fuse different sessions' requests into one node.
    let mut invocations = [0u64; 2];
    for s in order {
        // A dead WAL is the simulated kill -9: nothing runs after it.
        if db.wal_crashed() {
            break;
        }
        let request = scripts[s].next().expect("script length matches order");
        let conn = &mut conns[s];
        let cart = s as i64 + 1;
        let result = match request {
            Request::AddToCart { product, qty } => {
                conn.set_api("add_to_cart", invocations[0]);
                invocations[0] += 1;
                observed_request(conn, |c| app.add_to_cart(c, cart, product, qty)).map(|_| ())
            }
            Request::Checkout => {
                conn.set_api("checkout", invocations[1]);
                invocations[1] += 1;
                observed_request(conn, |c| app.checkout(c, cart, &CheckoutRequest::plain()))
                    .map(|_| ())
            }
        };
        match result {
            Ok(()) => committed += 1,
            Err(AppError::Rejected(_)) => rejected += 1,
            Err(_) => failed += 1,
        }
    }

    let fault_stats = db.fault_stats();
    let retry_stats = conns.iter().fold(RetryStats::default(), |mut acc, c| {
        let s = c.stats();
        acc.statement_retries += s.statement_retries;
        acc.txn_replays += s.txn_replays;
        acc.gave_up += s.gave_up;
        acc.total_backoff += s.total_backoff;
        acc
    });
    drop(conns);

    let log = db.log_entries();
    let aborted_log_entries = log
        .iter()
        .filter(|e| e.outcome == StmtOutcome::Aborted)
        .count();
    // The chaos log contains aborted and retried sequences; lifting must
    // handle them (discarding aborted work) for the witness count to be
    // meaningful.
    // Targeted analysis (the paper's §4.2.3 filtered mode): restrict the
    // cycle search to the invariants' columns. The unfiltered search is
    // quadratic in the chaos trace's many distinct abort-shaped API
    // patterns; the targeted one stays tractable and is the witness set
    // that matters for the invariants the report carries.
    let targets: Vec<_> = Invariant::ALL
        .into_iter()
        .flat_map(|inv| inv.targets())
        .collect();
    let witnesses = Analyzer::from_log(&log, &app.schema())
        .map(|a| {
            a.analyze_targeted(&RefinementConfig::at_isolation(config.isolation), &targets)
                .finding_count()
        })
        .unwrap_or(0);

    let invariant_results = Invariant::ALL
        .into_iter()
        .filter(|inv| inv.feature(app) == FeatureStatus::Supported)
        .map(|inv| (inv, inv.check(&db, app).err()))
        .collect();

    let report = ChaosReport {
        committed,
        rejected,
        failed,
        fault_stats,
        retry_stats,
        invariant_results,
        witnesses,
        aborted_log_entries,
        state_digest: state_digest(&db, app),
        crashed: db.wal_crashed(),
    };
    (report, db.metrics_report())
}

/// Rebuild `app`'s store (same schema, same seeded fixtures) and recover
/// the durable state under `wal` into it — the restart half of a
/// kill-and-recover cycle. Returns the recovered database alongside what
/// recovery found; errors only on structural corruption ([`DbError::Io`] /
/// [`DbError::WalCorrupt`]), never on an ordinary torn tail.
pub fn recover_app_store(
    app: &dyn ShopApp,
    isolation: IsolationLevel,
    wal: WalConfig,
) -> Result<(Arc<Database>, RecoveryInfo), DbError> {
    let db = app.make_store(isolation);
    let info = db.recover(wal)?;
    Ok((db, info))
}

/// A unique scratch directory under the system temp dir for WAL/recovery
/// artifacts (no external tempdir dependency). The directory is created;
/// callers remove it best-effort when done.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("acidrain-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_commits_everything() {
        let config = ChaosConfig::default();
        let report = run_chaos(&PrestaShop, &config);
        assert_eq!(report.failed, 0);
        assert_eq!(report.fault_stats.total_injected(), 0);
        assert_eq!(report.aborted_log_entries, 0);
        assert_eq!(report.retry_stats, RetryStats::default());
        assert!(report.committed > 0);
        assert!(report.invariants_held(), "{report:?}");
    }

    #[test]
    fn faulty_run_converges_via_retries() {
        let config = ChaosConfig {
            seed: 42,
            faults: FaultConfig::disabled()
                .with_deadlock(0.10)
                .with_write_conflict(0.05),
            ..ChaosConfig::default()
        };
        let report = run_chaos(&PrestaShop, &config);
        assert!(report.fault_stats.total_injected() > 0, "{report:?}");
        assert!(report.aborted_log_entries > 0);
        assert!(
            report.retry_stats.txn_replays + report.retry_stats.statement_retries > 0,
            "{report:?}"
        );
        // The retry layer absorbs the chaos: requests still complete.
        assert_eq!(report.failed, report.retry_stats.gave_up as usize);
        if report.failed == 0 {
            // Serial-at-request-level chaos with converged retries must
            // preserve the serial invariants.
            assert!(report.invariants_held(), "{report:?}");
        }
    }

    #[test]
    fn no_retry_policy_surfaces_failures() {
        let config = ChaosConfig {
            seed: 42,
            faults: FaultConfig::disabled().with_deadlock(0.25),
            policy: RetryPolicy::NoRetry,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&PrestaShop, &config);
        assert!(report.failed > 0, "{report:?}");
        assert_eq!(report.retry_stats.txn_replays, 0);
    }
}
