//! Interleaving-space exploration: ground truth for the C1 condition.
//!
//! 2AD reasons about *all possible* concurrent interleavings from one
//! serial trace; this module goes the other way and actually *runs* them.
//! For small scenarios every productive interleaving is enumerated
//! (bounded exhaustive model checking); for larger ones a seeded random
//! sample is drawn. Each explored schedule replays against a fresh store
//! and the final state is checked — so a "safe" verdict from
//! [`exhaustive`] is a proof over the bounded schedule space, not just a
//! failure to exploit.
//!
//! A schedule is a sequence of session indices; entry k runs exactly one
//! statement of that session. Only *productive* steps (ones that execute
//! a statement rather than parking on a lock) appear in schedules: a
//! blocked step changes no data, and every state reachable through it is
//! covered by schedules that let the lock holder run first. Deadlocks are
//! productive steps — the victim's statement errors and its session
//! continues down its error path.

use std::sync::Arc;

use acidrain_apps::SqlConn;
use acidrain_db::Database;

use crate::sched::{run_deterministic, StepOutcome, Stepper};

/// A factory producing a fresh, identically seeded store plus the session
/// requests to interleave. Stores are rebuilt per replay, keeping
/// exploration side-effect free and deterministic.
pub trait Scenario: Sync {
    /// Number of concurrent sessions.
    fn sessions(&self) -> usize;

    /// Build a fresh store (including any setup traffic).
    fn make_store(&self) -> Arc<Database>;

    /// Run session `index`'s request against `conn`. Errors are the
    /// session's own business (requests may be refused); outcomes are
    /// judged via [`Scenario::check`].
    fn run_session(&self, index: usize, conn: &mut dyn SqlConn);

    /// Check the invariant over the final committed state; `Err` describes
    /// the violation.
    fn check(&self, db: &Database) -> Result<(), String>;
}

/// Result of replaying one schedule from a fresh store.
#[derive(Debug)]
struct Replay {
    /// Outcome of the final schedule entry (`None` for the empty
    /// schedule).
    last: Option<StepOutcome>,
    /// Which sessions had finished by the end of the schedule.
    finished: Vec<bool>,
    /// Invariant check, evaluated only when every session finished within
    /// the schedule.
    violation: Option<String>,
}

impl Replay {
    fn all_finished(&self) -> bool {
        self.finished.iter().all(|f| *f)
    }
}

/// A boxed session request run by the replay driver.
type SessionTask<'a> = Box<dyn FnOnce(&mut dyn SqlConn) + Send + 'a>;

fn replay(scenario: &dyn Scenario, schedule: &[usize]) -> Replay {
    let db = scenario.make_store();
    let n = scenario.sessions();
    let tasks: Vec<SessionTask<'_>> = (0..n)
        .map(|i| {
            Box::new(move |conn: &mut dyn SqlConn| scenario.run_session(i, conn)) as SessionTask<'_>
        })
        .collect();

    let mut last = None;
    let mut finished = vec![false; n];
    let mut violation = None;
    run_deterministic(&db, tasks, |s: &mut Stepper| {
        for &choice in schedule {
            last = Some(s.step(choice));
        }
        for (i, f) in finished.iter_mut().enumerate() {
            *f = s.finished(i);
        }
        if finished.iter().all(|f| *f) {
            violation = scenario.check(&db).err();
        }
        // The driver's drain() finishes any remaining sessions afterwards;
        // that run is discarded along with the store.
    });
    Replay {
        last,
        finished,
        violation,
    }
}

/// The outcome of exploring a scenario's schedule space.
#[derive(Debug)]
pub struct Exploration {
    /// Complete schedules executed and checked.
    pub schedules_run: usize,
    /// Schedules whose final state violated the invariant.
    pub violations: Vec<Vec<usize>>,
    /// Whether the productive-schedule space was fully enumerated (vs
    /// sampled, or truncated by the budget).
    pub complete: bool,
}

impl Exploration {
    /// Whether no explored schedule violated the invariant.
    pub fn all_safe(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively explore every productive interleaving, up to
/// `max_schedules` complete schedules (a safety budget).
pub fn exhaustive(scenario: &dyn Scenario, max_schedules: usize) -> Exploration {
    let mut result = Exploration {
        schedules_run: 0,
        violations: Vec::new(),
        complete: true,
    };
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if result.schedules_run >= max_schedules {
            result.complete = false;
            break;
        }
        let state = replay(scenario, &prefix);
        if state.all_finished() {
            result.schedules_run += 1;
            if state.violation.is_some() {
                result.violations.push(prefix);
            }
            continue;
        }
        for i in 0..scenario.sessions() {
            if state.finished[i] {
                continue;
            }
            let mut child = prefix.clone();
            child.push(i);
            // Keep only productive branches (see module docs).
            if replay(scenario, &child).last == Some(StepOutcome::Executed) {
                stack.push(child);
            }
        }
    }
    result
}

/// Sample `samples` random productive schedules (deterministic under
/// `seed`).
pub fn randomized(scenario: &dyn Scenario, samples: usize, seed: u64) -> Exploration {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut result = Exploration {
        schedules_run: 0,
        violations: Vec::new(),
        complete: false,
    };
    'samples: for _ in 0..samples {
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            let state = replay(scenario, &prefix);
            if state.all_finished() {
                result.schedules_run += 1;
                if state.violation.is_some() {
                    result.violations.push(prefix);
                }
                continue 'samples;
            }
            let mut candidates: Vec<usize> = (0..scenario.sessions())
                .filter(|i| !state.finished[*i])
                .collect();
            candidates.shuffle(&mut rng);
            let mut advanced = false;
            for i in candidates {
                let mut child = prefix.clone();
                child.push(i);
                if replay(scenario, &child).last == Some(StepOutcome::Executed) {
                    prefix = child;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                // All remaining sessions blocked without a deadlock cycle
                // is unreachable; bail defensively.
                result.schedules_run += 1;
                continue 'samples;
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use acidrain_apps::didactic::Bank;
    use acidrain_db::{IsolationLevel, Value};

    /// Two withdrawals racing one account; the audit table records each
    /// success so over-withdrawal is observable in the final state.
    struct WithdrawScenario {
        bank: Bank,
        isolation: IsolationLevel,
        opening: i64,
        amount: i64,
    }

    impl Scenario for WithdrawScenario {
        fn sessions(&self) -> usize {
            2
        }

        fn make_store(&self) -> Arc<Database> {
            self.bank.make_bank(self.isolation, self.opening)
        }

        fn run_session(&self, _index: usize, conn: &mut dyn SqlConn) {
            if self.bank.withdraw(conn, 1, self.amount).is_ok() {
                // The teller hands out cash on success: record it.
                let _ = conn.exec(&format!(
                    "INSERT INTO accounts (balance) VALUES ({})",
                    -self.amount
                ));
            }
        }

        fn check(&self, db: &Database) -> Result<(), String> {
            let rows = db.table_rows("accounts").unwrap();
            let balance = rows[0][1].as_i64().unwrap();
            let paid_out: i64 = rows[1..].iter().map(|r| -r[1].as_i64().unwrap()).sum();
            if balance < 0 {
                return Err(format!("overdrawn: {balance}"));
            }
            if paid_out > self.opening {
                return Err(format!(
                    "paid out {paid_out} from an opening balance of {}",
                    self.opening
                ));
            }
            let _ = Value::Int(0);
            Ok(())
        }
    }

    fn scenario(bank: Bank, isolation: IsolationLevel) -> WithdrawScenario {
        WithdrawScenario {
            bank,
            isolation,
            opening: 100,
            amount: 99,
        }
    }

    #[test]
    fn exhaustive_finds_the_overdraft_at_weak_isolation() {
        // Unscoped withdraw (Figure 1a) at Read Committed: some
        // interleaving pays out $198 from a $100 account.
        let result = exhaustive(
            &scenario(Bank::figure_1a(), IsolationLevel::ReadCommitted),
            5000,
        );
        assert!(result.complete);
        assert!(result.schedules_run > 1);
        assert!(
            !result.all_safe(),
            "the overdraft interleaving must be found"
        );
        // And at least one schedule is safe (the serial ones).
        assert!(result.violations.len() < result.schedules_run);
    }

    #[test]
    fn exhaustive_proves_safety_at_strong_isolation() {
        for isolation in [
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializable,
        ] {
            let result = exhaustive(&scenario(Bank::figure_1b(), isolation), 5000);
            assert!(result.complete, "{isolation}");
            assert!(result.all_safe(), "{isolation}: {:?}", result.violations);
            assert!(result.schedules_run > 1);
        }
    }

    #[test]
    fn select_for_update_is_safe_even_at_read_committed() {
        let result = exhaustive(
            &scenario(Bank::fixed(), IsolationLevel::ReadCommitted),
            5000,
        );
        assert!(result.complete);
        assert!(result.all_safe(), "{:?}", result.violations);
    }

    #[test]
    fn budget_truncation_is_reported() {
        let result = exhaustive(
            &scenario(Bank::figure_1a(), IsolationLevel::ReadCommitted),
            1,
        );
        assert!(!result.complete);
        assert!(result.schedules_run <= 1);
    }

    #[test]
    fn randomized_is_deterministic_and_finds_the_race() {
        let s = scenario(Bank::figure_1a(), IsolationLevel::ReadCommitted);
        let a = randomized(&s, 40, 7);
        let b = randomized(&s, 40, 7);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.schedules_run, 40);
        assert!(!a.all_safe(), "40 random schedules should hit the race");
    }
}
