//! Driving the static repair adviser against the live engine.
//!
//! `acidrain-static::remediate` proves each fix set closed *statically*:
//! the re-audited trace admits no anomaly. This module adds the dynamic
//! half of the proof: for every finding with a closing fix, the original
//! Lemma-4 witness is lowered onto the *repaired* scenario
//! ([`acidrain_static::rewrite_plan`]) and executed through the witness
//! replayer. Candidates are tried in cost order and the first whose
//! replay does **not** confirm the anomaly is recommended
//! ([`acidrain_static::RemedyOutcome::chosen`]); a fix that still confirms is a
//! static/dynamic disagreement the report surfaces (and the
//! `repair_adviser` binary turns into a failing exit code).
//!
//! The fall-through matters: the static model is deliberately more
//! conservative than the engine in places (e.g. lock scopes it cannot
//! see), so a cheaper candidate can close on paper and lose under
//! execution. Walking the lattice until the witness dies keeps the
//! recommendation honest without giving up on cheap fixes wholesale.

use acidrain_apps::endpoints::{all_surfaces, AppSurface};
use acidrain_db::{IsolationLevel, Obs};
use acidrain_static::{
    plan_scenario, remediate_scenario, rewrite_plan, AppRemedies, AuditError, LevelRemedies,
    RemedyReport, Verdict,
};

use crate::replay::{execute_replay_plan, ReplayCaches};

/// Remediate `surface` at each of `levels`, replaying every closing
/// candidate until one survives the witness. Adviser-level counters
/// (candidates, closures, replays) are recorded on `obs`.
pub fn advise_surface(
    surface: &AppSurface,
    levels: &[IsolationLevel],
    obs: &Obs,
) -> Result<AppRemedies, AuditError> {
    let mut level_remedies = Vec::with_capacity(levels.len());
    for &level in levels {
        let mut scenarios = Vec::with_capacity(surface.scenarios.len());
        for scenario in &surface.scenarios {
            let mut remedies = remediate_scenario(surface, scenario, level)?;
            let plans = plan_scenario(surface, scenario, level)?;
            debug_assert_eq!(remedies.outcomes.len(), plans.plans.len());
            let mut caches = ReplayCaches::new();
            for (outcome, fp) in remedies.outcomes.iter_mut().zip(&plans.plans) {
                obs.repair_candidates(outcome.tried as u64);
                obs.repair_closures(outcome.candidates.len() as u64);
                if outcome.candidates.is_empty() {
                    continue;
                }
                let plan = match &fp.plan {
                    Ok(plan) => plan,
                    Err(reason) => {
                        // No executable witness to disprove: recommend the
                        // cheapest static closure, flagged as unreplayed.
                        outcome.chosen = Some(0);
                        outcome.verdict = Some(Verdict::Inconclusive(format!(
                            "witness not replayable: {reason}"
                        )));
                        continue;
                    }
                };
                let mut fallback: Option<(usize, Verdict)> = None;
                for (ci, candidate) in outcome.candidates.iter().enumerate() {
                    let (repaired, session_levels) = match rewrite_plan(plan, candidate) {
                        Ok(r) => r,
                        Err(_) => continue,
                    };
                    obs.repair_replay();
                    let verdict = execute_replay_plan(
                        scenario,
                        level,
                        &repaired,
                        &surface.schema,
                        &session_levels,
                        &mut caches,
                    );
                    if verdict != Verdict::Confirmed {
                        outcome.chosen = Some(ci);
                        outcome.verdict = Some(verdict);
                        break;
                    }
                    if fallback.is_none() {
                        fallback = Some((ci, verdict));
                    }
                }
                if outcome.chosen.is_none() {
                    match fallback {
                        // Every lowerable candidate still confirmed: report
                        // the cheapest one so the disagreement is visible.
                        Some((ci, verdict)) => {
                            outcome.chosen = Some(ci);
                            outcome.verdict = Some(verdict);
                        }
                        None => {
                            outcome.chosen = Some(0);
                            outcome.verdict = Some(Verdict::Inconclusive(
                                "no candidate could be lowered onto the witness plan".to_string(),
                            ));
                        }
                    }
                }
            }
            scenarios.push(remedies);
        }
        level_remedies.push(LevelRemedies { level, scenarios });
    }
    Ok(AppRemedies {
        app: surface.app.clone(),
        levels: level_remedies,
    })
}

/// Advise the whole registry at each of `levels`.
pub fn advise_all(levels: &[IsolationLevel], obs: &Obs) -> Result<RemedyReport, AuditError> {
    let apps = all_surfaces()
        .iter()
        .map(|s| advise_surface(s, levels, obs))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RemedyReport { apps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acidrain_apps::endpoints::{booking_surfaces, didactic_surfaces, flexcoin_surface};
    use acidrain_core::AnomalyScope;

    fn surface_named(name: &str) -> AppSurface {
        didactic_surfaces()
            .into_iter()
            .chain(booking_surfaces())
            .find(|s| s.app == name)
            .unwrap()
    }

    #[test]
    fn every_scoped_bank_fix_survives_its_witness() {
        let surface = surface_named("bank-figure1b");
        let obs = Obs::new();
        obs.enable();
        let advised = advise_surface(&surface, &[IsolationLevel::ReadCommitted], &obs).unwrap();
        let rc = advised.level(IsolationLevel::ReadCommitted).unwrap();
        assert!(rc.finding_count() > 0);
        for scenario in &rc.scenarios {
            for o in &scenario.outcomes {
                assert!(o.closed(), "{:?}", o.residual);
                assert_ne!(
                    o.verdict,
                    Some(Verdict::Confirmed),
                    "recommended fix failed its replay: {o:?}"
                );
            }
        }
        let counters = obs.counters();
        assert!(counters.repair_candidates > 0);
        assert!(counters.repair_closures > 0);
        assert!(counters.repair_replays > 0);
    }

    #[test]
    fn transfer_bank_lost_update_is_fixed_and_verified() {
        // The new banking surface: scoped but lock-free. Its level-based
        // lost update must get a closing fix whose replay never confirms.
        let surface = surface_named("bank-transfer");
        let obs = Obs::new();
        let advised = advise_surface(&surface, &[IsolationLevel::ReadCommitted], &obs).unwrap();
        let rc = advised.level(IsolationLevel::ReadCommitted).unwrap();
        let level_based: Vec<_> = rc
            .scenarios
            .iter()
            .flat_map(|s| &s.outcomes)
            .filter(|o| o.finding.scope == AnomalyScope::LevelBased)
            .collect();
        assert!(!level_based.is_empty(), "transfer must race with itself");
        for o in level_based {
            assert!(o.closed(), "{:?}", o.residual);
            assert_ne!(o.verdict, Some(Verdict::Confirmed), "{o:?}");
        }
    }

    #[test]
    fn flexcoin_scope_fix_survives_the_witness() {
        let surface = flexcoin_surface();
        let obs = Obs::new();
        let advised = advise_surface(&surface, &[IsolationLevel::ReadCommitted], &obs).unwrap();
        let rc = advised.level(IsolationLevel::ReadCommitted).unwrap();
        for scenario in &rc.scenarios {
            for o in &scenario.outcomes {
                if !o.closed() {
                    continue;
                }
                assert_ne!(o.verdict, Some(Verdict::Confirmed), "{o:?}");
                assert!(o.recommended().is_some());
            }
        }
    }
}
