//! # acidrain-harness
//!
//! Attack execution and experiment infrastructure for the ACIDRain
//! reproduction: a deterministic statement-level interleaving scheduler, a
//! threaded stress executor, witness-driven attack drivers with invariant
//! verification, and runners that regenerate every table and figure of the
//! paper's evaluation.

#![warn(missing_docs)]

pub mod adviser;
pub mod attack;
pub mod chaos;
pub mod experiments;
pub mod explore;
pub mod netchaos;
pub mod replay;
pub mod sched;
pub mod stress;
pub mod texttable;

pub use adviser::{advise_all, advise_surface};
pub use attack::{
    audit_cell, probe_trace, probe_trace_on, run_attack, run_serial_control, statement_index,
    try_audit_cell, AttackOutcome, AuditDegraded, AuditStage, CellReport, Invariant,
};
pub use chaos::{
    recover_app_store, run_chaos, run_chaos_instrumented, scratch_dir, state_digest, ChaosConfig,
    ChaosReport,
};
pub use explore::{exhaustive, randomized, Exploration, Scenario};
pub use netchaos::{flaky_client_campaign, run_net_chaos, NetChaosConfig, NetChaosReport};
pub use replay::{execute_replay_plan, replay_all, replay_surface, ReplayCaches};
pub use sched::{run_deterministic, run_deterministic_on, GatedConn, StepOutcome, Stepper};
pub use stress::{run_concurrent, run_concurrent_watchdog, DelayConn, TaskOutcome};
