//! Threaded stress execution — the paper's actual attack mechanics:
//! genuinely concurrent requests, optionally with an injected
//! per-statement delay standing in for the 200 ms pass-through proxy the
//! authors used to widen race windows (§4.2.4).

use std::sync::Arc;
use std::time::Duration;

use acidrain_apps::SqlConn;
use acidrain_db::{Connection, Database, DbError, ResultSet};

/// A [`Connection`] that sleeps before each statement, emulating
/// application-server-to-database network latency.
pub struct DelayConn {
    conn: Connection,
    delay: Duration,
}

impl DelayConn {
    pub fn new(conn: Connection, delay: Duration) -> Self {
        DelayConn { conn, delay }
    }
}

impl SqlConn for DelayConn {
    fn exec(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.conn.execute(sql)
    }

    fn set_api(&mut self, name: &str, invocation: u64) {
        self.conn.set_api(name, invocation);
    }

    fn session(&self) -> u64 {
        self.conn.session_id()
    }
}

/// Run `tasks` on real threads, all released simultaneously by a barrier,
/// each with its own connection (delayed by `delay` per statement).
pub fn run_concurrent<T, F>(db: &Arc<Database>, tasks: Vec<F>, delay: Duration) -> Vec<T>
where
    T: Send,
    F: FnOnce(&mut dyn SqlConn) -> T + Send,
{
    let barrier = std::sync::Barrier::new(tasks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                let mut conn = DelayConn::new(db.connect(), delay);
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    task(&mut conn)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress task panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acidrain_db::{IsolationLevel, Value};
    use acidrain_sql::schema::{ColumnDef, ColumnType, Schema, TableSchema};

    #[test]
    fn concurrent_tasks_all_complete() {
        let schema = Schema::new().with_table(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("v", ColumnType::Int),
            ],
        ));
        let db = Database::new(schema, IsolationLevel::ReadCommitted);
        let tasks: Vec<_> = (0..8)
            .map(|i| {
                move |conn: &mut dyn SqlConn| {
                    conn.exec(&format!("INSERT INTO t (v) VALUES ({i})"))
                        .unwrap();
                    i
                }
            })
            .collect();
        let results = run_concurrent(&db, tasks, Duration::ZERO);
        assert_eq!(results.len(), 8);
        assert_eq!(db.table_rows("t").unwrap().len(), 8);
        // Auto-increment ids are unique under concurrency.
        let mut ids: Vec<i64> = db
            .table_rows("t")
            .unwrap()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn delay_connection_still_correct() {
        let schema = Schema::new().with_table(TableSchema::new(
            "t",
            vec![ColumnDef::new("v", ColumnType::Int)],
        ));
        let db = Database::new(schema, IsolationLevel::ReadCommitted);
        db.seed("t", vec![vec![Value::Int(0)]]).unwrap();
        let tasks: Vec<_> = (0..4)
            .map(|_| {
                |conn: &mut dyn SqlConn| {
                    conn.exec("UPDATE t SET v = v + 1").unwrap();
                }
            })
            .collect();
        run_concurrent(&db, tasks, Duration::from_millis(1));
        // Relative updates serialize via write locks regardless of delay.
        assert_eq!(db.table_rows("t").unwrap()[0][0], Value::Int(4));
    }
}
