//! Threaded stress execution — the paper's actual attack mechanics:
//! genuinely concurrent requests, optionally with an injected
//! per-statement delay standing in for the 200 ms pass-through proxy the
//! authors used to widen race windows (§4.2.4).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use acidrain_apps::SqlConn;
use acidrain_db::{Connection, Database, DbError, Obs, ResultSet, Stopwatch};

/// A [`Connection`] that sleeps before each statement, emulating
/// application-server-to-database network latency.
///
/// The sleep is the fixed base `delay` plus whatever jitter the database's
/// fault injector draws on its latency channel
/// ([`Connection::jittered_delay`]); with the channel unconfigured the
/// base delay is used untouched, so existing attacks are unchanged.
pub struct DelayConn {
    conn: Connection,
    delay: Duration,
}

impl DelayConn {
    /// Wrap `conn`, sleeping `delay` before every statement.
    pub fn new(conn: Connection, delay: Duration) -> Self {
        DelayConn { conn, delay }
    }
}

impl SqlConn for DelayConn {
    fn exec(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        let delay = self.conn.jittered_delay(self.delay);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        self.conn.execute(sql)
    }

    fn set_api(&mut self, name: &str, invocation: u64) {
        self.conn.set_api(name, invocation);
    }

    fn session(&self) -> u64 {
        self.conn.session_id()
    }

    fn obs(&self) -> Obs {
        self.conn.obs().clone()
    }
}

/// Run `tasks` on real threads, all released simultaneously by a barrier,
/// each with its own connection (delayed by `delay` per statement). Each
/// task's wall-clock latency lands in the registry's task histogram when
/// metrics are enabled.
pub fn run_concurrent<T, F>(db: &Arc<Database>, tasks: Vec<F>, delay: Duration) -> Vec<T>
where
    T: Send,
    F: FnOnce(&mut dyn SqlConn) -> T + Send,
{
    let barrier = std::sync::Barrier::new(tasks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                let mut conn = DelayConn::new(db.connect(), delay);
                let session = conn.session();
                let obs = db.obs().clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let timer = obs.timer();
                    let out = task(&mut conn);
                    if let Some(dur) = timer.elapsed() {
                        obs.task_finished(session, dur);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress task panicked"))
            .collect()
    })
}

/// How one watchdog-supervised task ended.
#[derive(Debug)]
pub enum TaskOutcome<T> {
    /// The task ran to completion and returned a value.
    Completed(T),
    /// The task failed after the watchdog deadline elapsed — in practice a
    /// lock wait that the clamped `lock_wait_timeout` degraded into a
    /// reported [`DbError::LockTimeout`] instead of a hang.
    TimedOut {
        /// How long the task ran before the clamp fired.
        elapsed: Duration,
    },
    /// The task panicked before the deadline.
    Panicked,
}

impl<T> TaskOutcome<T> {
    /// Whether the task ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, TaskOutcome::Completed(_))
    }

    /// Whether the watchdog clamp fired.
    pub fn is_timed_out(&self) -> bool {
        matches!(self, TaskOutcome::TimedOut { .. })
    }

    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            TaskOutcome::Completed(v) => Some(v),
            _ => None,
        }
    }
}

/// [`run_concurrent`] with a per-task watchdog: the database's
/// `lock_wait_timeout` is clamped to `deadline` for the duration of the
/// run (and restored after), so a task stuck waiting on a lock held by a
/// wedged peer degrades into a reported [`TaskOutcome::TimedOut`] within
/// roughly `deadline` instead of hanging the harness. Task panics are
/// caught; a panic after the deadline is classified as the timeout it
/// almost certainly is (the task unwrapped the injected
/// [`DbError::LockTimeout`]).
///
/// [`DbError::LockTimeout`]: acidrain_db::DbError::LockTimeout
pub fn run_concurrent_watchdog<T, F>(
    db: &Arc<Database>,
    tasks: Vec<F>,
    delay: Duration,
    deadline: Duration,
) -> Vec<TaskOutcome<T>>
where
    T: Send,
    F: FnOnce(&mut dyn SqlConn) -> T + Send,
{
    let prior = db.lock_wait_timeout();
    db.set_lock_wait_timeout(prior.min(deadline));
    let barrier = std::sync::Barrier::new(tasks.len());
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                let mut conn = DelayConn::new(db.connect(), delay);
                let session = conn.session();
                let obs = db.obs().clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    // One stopwatch serves both the watchdog's timeout
                    // classification and the recorded task latency, so the
                    // duration the report shows is the duration the
                    // classification used (no separate clock reads to
                    // drift apart).
                    let sw = Stopwatch::start();
                    let result = catch_unwind(AssertUnwindSafe(|| task(&mut conn)));
                    let elapsed = sw.elapsed();
                    obs.task_finished(session, elapsed);
                    (result, elapsed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok((Ok(value), _)) => TaskOutcome::Completed(value),
                Ok((Err(_), elapsed)) if elapsed >= deadline => TaskOutcome::TimedOut { elapsed },
                _ => TaskOutcome::Panicked,
            })
            .collect()
    });
    db.set_lock_wait_timeout(prior);
    outcomes
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    use super::*;
    use acidrain_db::{IsolationLevel, Value};
    use acidrain_sql::schema::{ColumnDef, ColumnType, Schema, TableSchema};

    #[test]
    fn concurrent_tasks_all_complete() {
        let schema = Schema::new().with_table(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("v", ColumnType::Int),
            ],
        ));
        let db = Database::new(schema, IsolationLevel::ReadCommitted);
        let tasks: Vec<_> = (0..8)
            .map(|i| {
                move |conn: &mut dyn SqlConn| {
                    conn.exec(&format!("INSERT INTO t (v) VALUES ({i})"))
                        .unwrap();
                    i
                }
            })
            .collect();
        let results = run_concurrent(&db, tasks, Duration::ZERO);
        assert_eq!(results.len(), 8);
        assert_eq!(db.table_rows("t").unwrap().len(), 8);
        // Auto-increment ids are unique under concurrency.
        let mut ids: Vec<i64> = db
            .table_rows("t")
            .unwrap()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn delay_connection_still_correct() {
        let schema = Schema::new().with_table(TableSchema::new(
            "t",
            vec![ColumnDef::new("v", ColumnType::Int)],
        ));
        let db = Database::new(schema, IsolationLevel::ReadCommitted);
        db.seed("t", vec![vec![Value::Int(0)]]).unwrap();
        let tasks: Vec<_> = (0..4)
            .map(|_| {
                |conn: &mut dyn SqlConn| {
                    conn.exec("UPDATE t SET v = v + 1").unwrap();
                }
            })
            .collect();
        run_concurrent(&db, tasks, Duration::from_millis(1));
        // Relative updates serialize via write locks regardless of delay.
        assert_eq!(db.table_rows("t").unwrap()[0][0], Value::Int(4));
    }

    #[test]
    fn watchdog_degrades_hung_lock_wait_into_timeout() {
        let schema = Schema::new().with_table(TableSchema::new(
            "t",
            vec![ColumnDef::new("v", ColumnType::Int)],
        ));
        let db = Database::new(schema, IsolationLevel::ReadCommitted);
        db.seed("t", vec![vec![Value::Int(0)]]).unwrap();

        // A connection outside the task set holds a row lock for the
        // whole run: every task's update would wait forever.
        let mut holder = db.connect();
        holder.execute("BEGIN").unwrap();
        holder.execute("SELECT v FROM t FOR UPDATE").unwrap();

        let started = Instant::now();
        let deadline = Duration::from_millis(100);
        let tasks: Vec<_> = (0..2)
            .map(|_| {
                |conn: &mut dyn SqlConn| {
                    conn.exec("UPDATE t SET v = 1").unwrap();
                }
            })
            .collect();
        let outcomes = run_concurrent_watchdog(&db, tasks, Duration::ZERO, deadline);

        assert!(
            started.elapsed() < Duration::from_secs(5),
            "watchdog must bound the run"
        );
        assert!(
            outcomes.iter().all(|o| o.is_timed_out()),
            "hung lock waits must be reported, got {outcomes:?}"
        );
        // The clamp is restored afterwards.
        assert!(db.lock_wait_timeout() > deadline);

        holder.execute("ROLLBACK").unwrap();
        assert_eq!(db.active_transactions(), 0);
        assert_eq!(db.locked_resources(), 0);
    }
}
