//! Fixed-width text-table rendering for experiment output.

/// Render rows as a fixed-width table with a header separator.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&headers_owned, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let table = render(
            &["App", "Count"],
            &[
                vec!["OpenCart".into(), "3".into()],
                vec!["X".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("App"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("OpenCart  3"));
    }
}
