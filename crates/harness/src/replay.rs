//! Executing witness replay plans against the live engine.
//!
//! `acidrain-static::replay` lowers each static finding to a
//! [`ReplayPlan`] — canned per-session scripts plus the Lemma-4 split
//! point. This module runs the plan through the deterministic scheduler
//! ([`crate::sched`]) on a fresh store and classifies the outcome:
//!
//! - **Confirmed** — the interleaving executed and its outcome digest
//!   (per-statement results plus final table contents) differs from
//!   *every* serial execution of the same scripts. Whatever the schedule
//!   produced, no serial order could have; the anomaly is real.
//! - **Blocked** — the engine refused the schedule at this level: a
//!   session's statement hit a lock wait at its scheduled slot, or a
//!   transaction was aborted (deadlock victim, first-committer-wins).
//! - **Inconclusive** — the schedule was not realizable (no concrete
//!   counterpart, too many instances to baseline) or it executed cleanly
//!   but produced a serially-equivalent outcome.
//!
//! Blocked is *not* refuted: the abstract witness quantifies over every
//! expansion of the trace, and the replayer executes exactly one. The
//! digest comparison is the replayer's anomaly oracle — it needs no
//! per-app invariant knowledge, which is what lets it run over the whole
//! corpus uniformly.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use acidrain_apps::endpoints::{all_surfaces, AppSurface, Scenario};
use acidrain_apps::SqlConn;
use acidrain_db::{Database, DbError, IsolationLevel, ResultSet};
use acidrain_sql::schema::Schema;
use acidrain_static::{
    plan_scenario, AppReplay, AuditError, LevelReplay, ReplayOutcome, ReplayPlan, ReplayReport,
    ScenarioReplay, Verdict,
};

use crate::sched::{run_deterministic_on, StepOutcome, Stepper};

/// Largest witness (concurrent instances) the replayer baselines: the
/// serial oracle enumerates every permutation of the sessions, so the
/// count must stay factorial-small. Corpus witnesses use 2–3 instances.
const MAX_SESSIONS: usize = 4;

/// The outcome digest of one execution: what every session's statements
/// returned, plus the final contents of every table. Two executions with
/// equal digests are observably equivalent.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Digest {
    /// Per-session statement outcomes, indexed by plan session.
    sessions: Vec<Vec<String>>,
    /// Final rows per table, sorted, in schema (name) order.
    tables: Vec<(String, Vec<String>)>,
}

/// One session's script execution: rendered outcomes plus whether the
/// transaction died to an abort-class error.
#[derive(Debug)]
struct ScriptRun {
    lines: Vec<String>,
    aborted: Option<&'static str>,
}

/// A stable, session-id-free rendering of one statement outcome. Error
/// messages can embed transaction ids, so errors render as their class
/// only — still enough to distinguish "this statement failed here but not
/// serially".
fn render_outcome(result: &Result<ResultSet, DbError>) -> String {
    match result {
        Ok(rs) => format!("ok {:?} {:?}", rs.columns, rs.rows),
        Err(e) => format!("err {}", error_class(e)),
    }
}

fn error_class(e: &DbError) -> &'static str {
    match e {
        DbError::Parse(_) => "parse",
        DbError::UnknownTable(_) => "unknown-table",
        DbError::UnknownColumn(_) => "unknown-column",
        DbError::Type(_) => "type",
        DbError::ConstraintViolation(_) => "constraint-violation",
        DbError::WouldBlock { .. } => "would-block",
        DbError::Deadlock => "deadlock",
        DbError::WriteConflict(_) => "write-conflict",
        DbError::LockTimeout => "lock-timeout",
        DbError::ConnectionDropped => "connection-dropped",
        DbError::Unsupported(_) => "unsupported",
        DbError::Io(_) => "io",
        DbError::WalCorrupt(_) => "wal-corrupt",
        DbError::UnknownSavepoint(_) => "unknown-savepoint",
        DbError::TooManySessions => "too-many-sessions",
        DbError::Internal(_) => "internal",
    }
}

/// Run one canned script on `conn`, stopping early if the transaction is
/// rolled back under it (the remaining statements would only measure
/// error noise, identically in every execution).
fn run_script(conn: &mut dyn SqlConn, statements: &[String]) -> ScriptRun {
    let mut lines = Vec::with_capacity(statements.len());
    let mut aborted = None;
    for sql in statements {
        let result = conn.exec(sql);
        lines.push(render_outcome(&result));
        if let Err(e) = &result {
            if e.aborts_transaction() {
                aborted = Some(error_class(e));
                break;
            }
        }
    }
    ScriptRun { lines, aborted }
}

/// Replay the setup statements on a plain connection. Recorded failures
/// (statement-level errors the endpoint itself provoked) repeat
/// deterministically, so errors are not distinguished from the recording.
fn run_setup(db: &Arc<Database>, setup: &[String]) {
    let mut conn = db.connect();
    for sql in setup {
        let _ = conn.execute(sql);
    }
}

fn table_digest(db: &Arc<Database>, schema: &Schema) -> Vec<(String, Vec<String>)> {
    schema
        .tables()
        .map(|t| {
            let mut rows: Vec<String> = db
                .table_rows(&t.name)
                .map(|rows| rows.iter().map(|r| format!("{r:?}")).collect())
                .unwrap_or_default();
            rows.sort();
            (t.name.clone(), rows)
        })
        .collect()
}

/// Every permutation of `0..n` (Heap's algorithm, deterministic order).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    heap(n, &mut items, &mut out);
    out
}

/// The outcome digests of every serial execution of the plan's scripts
/// (one fresh store per permutation), deduplicated. `session_levels`
/// carries per-session isolation overrides (the repair adviser's
/// [`acidrain_static::Fix::Isolation`] fixes); `None` keeps the store
/// default.
fn serial_digests(
    scenario: &Scenario,
    level: IsolationLevel,
    plan: &ReplayPlan,
    schema: &Schema,
    session_levels: &[Option<IsolationLevel>],
) -> Vec<Digest> {
    let n = plan.sessions.len();
    let mut digests: Vec<Digest> = Vec::new();
    for perm in permutations(n) {
        let db = scenario.make_store(level);
        run_setup(&db, &plan.setup);
        let mut sessions = vec![Vec::new(); n];
        for &i in &perm {
            let mut conn = db.connect();
            if let Some(l) = session_levels.get(i).copied().flatten() {
                conn.set_isolation(l);
            }
            sessions[i] = run_script(&mut conn, &plan.sessions[i].statements).lines;
        }
        let digest = Digest {
            sessions,
            tables: table_digest(&db, schema),
        };
        if !digests.contains(&digest) {
            digests.push(digest);
        }
    }
    digests
}

/// Step session `i` repeatedly until it finishes; `Err` carries the lock
/// wait that broke the schedule.
fn step_to_completion(stepper: &mut Stepper, i: usize, api: &str) -> Result<(), String> {
    loop {
        match stepper.step(i) {
            StepOutcome::Executed => {}
            StepOutcome::Finished => return Ok(()),
            StepOutcome::Blocked => {
                return Err(format!(
                    "lock wait: session {i} ({api}) blocked mid-schedule"
                ))
            }
        }
    }
}

/// Per-scenario-per-level execution caches. Findings overwhelmingly share
/// plans (same seed split, same hop APIs), and distinct plans share serial
/// baselines, so both layers are keyed by plan content (including any
/// per-session isolation overrides).
struct Caches {
    verdicts: HashMap<String, Verdict>,
    serial: HashMap<String, Vec<Digest>>,
}

impl Caches {
    fn new() -> Self {
        Caches {
            verdicts: HashMap::new(),
            serial: HashMap::new(),
        }
    }
}

/// Opaque execution caches for repeated plan replays (one per
/// scenario × level is the intended granularity — plans from different
/// stores must not share entries).
pub struct ReplayCaches(Caches);

impl ReplayCaches {
    /// Fresh, empty caches.
    pub fn new() -> Self {
        ReplayCaches(Caches::new())
    }
}

impl Default for ReplayCaches {
    fn default() -> Self {
        ReplayCaches::new()
    }
}

fn serial_key(plan: &ReplayPlan, session_levels: &[Option<IsolationLevel>]) -> String {
    format!("{session_levels:?}|{:?}|{:?}", plan.setup, plan.sessions)
}

fn verdict_key(plan: &ReplayPlan, session_levels: &[Option<IsolationLevel>]) -> String {
    format!("{}|{}", plan.seed_prefix, serial_key(plan, session_levels))
}

/// Execute one replay plan against a fresh store and classify the
/// outcome. Public entry point for drivers beyond the witness replayer
/// (the repair adviser replays *repaired* plans through the same oracle,
/// with per-session isolation overrides).
pub fn execute_replay_plan(
    scenario: &Scenario,
    level: IsolationLevel,
    plan: &ReplayPlan,
    schema: &Schema,
    session_levels: &[Option<IsolationLevel>],
    caches: &mut ReplayCaches,
) -> Verdict {
    execute_plan(scenario, level, plan, schema, session_levels, &mut caches.0)
}

/// Execute one plan: the Lemma-4 interleaving (seed prefix, each hop in
/// full, seed remainder), digested and compared against the serial oracle.
fn execute_plan(
    scenario: &Scenario,
    level: IsolationLevel,
    plan: &ReplayPlan,
    schema: &Schema,
    session_levels: &[Option<IsolationLevel>],
    caches: &mut Caches,
) -> Verdict {
    let n = plan.sessions.len();
    if n > MAX_SESSIONS {
        return Verdict::Inconclusive(format!(
            "witness needs {n} concurrent instances; serial baseline capped at {MAX_SESSIONS}"
        ));
    }
    let vkey = verdict_key(plan, session_levels);
    if let Some(v) = caches.verdicts.get(&vkey) {
        return v.clone();
    }

    let db = scenario.make_store(level);
    run_setup(&db, &plan.setup);

    let runs: Arc<Mutex<Vec<Option<ScriptRun>>>> =
        Arc::new(Mutex::new((0..n).map(|_| None).collect()));
    let tasks: Vec<_> = plan
        .sessions
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let runs = Arc::clone(&runs);
            let statements = s.statements.clone();
            move |conn: &mut dyn SqlConn| {
                let run = run_script(conn, &statements);
                runs.lock().unwrap()[i] = Some(run);
            }
        })
        .collect();
    let conns = (0..n)
        .map(|i| {
            let mut conn = db.connect();
            if let Some(l) = session_levels.get(i).copied().flatten() {
                conn.set_isolation(l);
            }
            conn
        })
        .collect();

    let mut schedule_break: Option<String> = None;
    run_deterministic_on(conns, tasks, |stepper: &mut Stepper| {
        // Seed prefix: up to and including o1.
        for _ in 0..plan.seed_prefix {
            match stepper.step(0) {
                StepOutcome::Executed => {}
                StepOutcome::Finished => break,
                StepOutcome::Blocked => {
                    schedule_break =
                        Some("lock wait: seed session blocked inside its prefix".to_string());
                    return;
                }
            }
        }
        // Every hop instance, in cycle order, in full.
        for (i, session) in plan.sessions.iter().enumerate().skip(1) {
            if let Err(reason) = step_to_completion(stepper, i, &session.api) {
                schedule_break = Some(reason);
                return;
            }
        }
        // Seed remainder.
        if let Err(reason) = step_to_completion(stepper, 0, &plan.sessions[0].api) {
            schedule_break = Some(reason);
        }
    });

    let runs = Arc::try_unwrap(runs)
        .expect("session tasks joined")
        .into_inner()
        .unwrap();
    let verdict = if let Some(reason) = schedule_break {
        Verdict::Blocked(reason)
    } else if let Some((i, class)) = runs
        .iter()
        .enumerate()
        .find_map(|(i, r)| r.as_ref().and_then(|r| r.aborted).map(|class| (i, class)))
    {
        Verdict::Blocked(format!(
            "abort: session {i} ({}) rolled back ({class})",
            plan.sessions[i].api
        ))
    } else {
        let digest = Digest {
            sessions: runs
                .into_iter()
                .map(|r| r.expect("every session ran").lines)
                .collect(),
            tables: table_digest(&db, schema),
        };
        let skey = serial_key(plan, session_levels);
        let serial = caches
            .serial
            .entry(skey)
            .or_insert_with(|| serial_digests(scenario, level, plan, schema, session_levels));
        if serial.contains(&digest) {
            Verdict::Inconclusive("executed cleanly; outcome serially equivalent".to_string())
        } else {
            Verdict::Confirmed
        }
    };
    caches.verdicts.insert(vkey, verdict.clone());
    verdict
}

/// Replay every static finding of `surface` at each of `levels`.
pub fn replay_surface(
    surface: &AppSurface,
    levels: &[IsolationLevel],
) -> Result<AppReplay, AuditError> {
    let mut level_replays = Vec::with_capacity(levels.len());
    for &level in levels {
        let mut scenarios = Vec::with_capacity(surface.scenarios.len());
        for scenario in &surface.scenarios {
            let plans = plan_scenario(surface, scenario, level)?;
            let mut caches = Caches::new();
            let outcomes = plans
                .plans
                .into_iter()
                .map(|fp| {
                    let verdict = match &fp.plan {
                        Err(reason) => Verdict::Inconclusive(reason.clone()),
                        Ok(plan) => {
                            let no_overrides = vec![None; plan.sessions.len()];
                            execute_plan(
                                scenario,
                                level,
                                plan,
                                &surface.schema,
                                &no_overrides,
                                &mut caches,
                            )
                        }
                    };
                    ReplayOutcome {
                        finding: fp.finding,
                        verdict,
                    }
                })
                .collect();
            scenarios.push(ScenarioReplay {
                scenario: plans.scenario,
                outcomes,
            });
        }
        level_replays.push(LevelReplay { level, scenarios });
    }
    Ok(AppReplay {
        app: surface.app.clone(),
        levels: level_replays,
    })
}

/// Replay the whole registry (corpus, didactic apps, Flexcoin) at each of
/// `levels`.
pub fn replay_all(levels: &[IsolationLevel]) -> Result<ReplayReport, AuditError> {
    let apps = all_surfaces()
        .iter()
        .map(|s| replay_surface(s, levels))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ReplayReport { apps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acidrain_apps::endpoints::{didactic_surfaces, flexcoin_surface};
    use acidrain_core::AnomalyScope;

    fn surface_named(name: &str) -> AppSurface {
        didactic_surfaces()
            .into_iter()
            .find(|s| s.app == name)
            .unwrap()
    }

    #[test]
    fn figure1a_overdraft_is_confirmed_at_every_level() {
        // The unscoped withdraw has no transaction for any level to
        // protect: the lost-update interleaving must execute and diverge
        // from both serial orders everywhere, Serializable included
        // (scope-based — the paper's central point).
        let surface = surface_named("bank-figure1a");
        let replay = replay_surface(&surface, &IsolationLevel::ALL).unwrap();
        for level in &replay.levels {
            assert!(level.count("confirmed") > 0, "{:?}: {level:?}", level.level);
        }
    }

    #[test]
    fn serializable_confirms_no_level_based_anomaly() {
        for surface in [surface_named("bank-figure1b"), flexcoin_surface()] {
            let replay = replay_surface(&surface, &[IsolationLevel::Serializable]).unwrap();
            let report = ReplayReport { apps: vec![replay] };
            assert!(
                report.serializable_level_based_confirmed().is_empty(),
                "{}: {report:?}",
                surface.app
            );
        }
    }

    #[test]
    fn scoped_bank_is_blocked_or_clean_at_serializable_but_confirmed_at_rc() {
        let surface = surface_named("bank-figure1b");
        let replay = replay_surface(
            &surface,
            &[IsolationLevel::ReadCommitted, IsolationLevel::Serializable],
        )
        .unwrap();
        let rc = replay.level(IsolationLevel::ReadCommitted).unwrap();
        assert!(rc.count("confirmed") > 0, "{rc:?}");
        let ser = replay.level(IsolationLevel::Serializable).unwrap();
        // The static audit already admits nothing level-based at SER, and
        // whatever scope-based findings remain must not confirm as
        // level-based ones; the engine gate is the empty intersection.
        assert_eq!(
            ser.scenarios
                .iter()
                .flat_map(|s| &s.outcomes)
                .filter(|o| o.verdict == Verdict::Confirmed
                    && o.finding.scope == AnomalyScope::LevelBased)
                .count(),
            0,
            "{ser:?}"
        );
    }

    #[test]
    fn every_finding_gets_classified() {
        let surface = surface_named("payroll");
        let replay = replay_surface(&surface, &IsolationLevel::ALL).unwrap();
        let audit = acidrain_static::audit_surface(&surface).unwrap();
        for level in IsolationLevel::ALL {
            let audited = audit.level(level).unwrap().finding_count();
            let replayed: usize = replay
                .level(level)
                .unwrap()
                .scenarios
                .iter()
                .map(|s| s.outcomes.len())
                .sum();
            assert_eq!(audited, replayed, "{level:?}");
        }
    }

    #[test]
    fn permutations_cover_and_dedupe() {
        assert_eq!(permutations(1), vec![vec![0]]);
        let p3 = permutations(3);
        assert_eq!(p3.len(), 6);
        let mut sorted = p3.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }
}
