//! Deterministic interleaving of concurrent API calls.
//!
//! Each API call runs on its own thread against a [`GatedConn`] that pauses
//! before every statement until the driver grants a permit. Exactly one
//! statement executes at a time, so the driver's grant sequence *is* the
//! interleaving — this replaces the paper's "rapid successive HTTP
//! requests" and 200 ms proxy delay with a reproducible schedule.
//!
//! Lock conflicts surface to the driver as [`StepOutcome::Blocked`]
//! (nothing executed; the permit can be retried after other sessions make
//! progress), which is how witness-derived schedules remain executable
//! even when the database's locks fight back.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use acidrain_apps::SqlConn;
use acidrain_db::{Connection, Database, DbError, ResultSet};

/// Session state shared between a session thread and the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateState {
    /// The session is executing application code (or has just been granted
    /// a permit).
    Running,
    /// The session is parked before a statement. `blocked` records whether
    /// its previous attempt hit a lock conflict.
    AwaitingPermit { blocked: bool },
    /// The driver granted a permit; the session owns the "CPU".
    PermitGranted,
    /// The session's task returned (or panicked).
    Finished,
}

struct Gate {
    state: Mutex<GateState>,
    to_session: Condvar,
    to_driver: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Gate {
            state: Mutex::new(GateState::Running),
            to_session: Condvar::new(),
            to_driver: Condvar::new(),
        })
    }
}

/// What happened when the driver granted one permit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The session executed one statement and is parked before its next
    /// one (or went on to finish).
    Executed,
    /// The statement hit a lock conflict: nothing executed; retry later.
    Blocked,
    /// The session had already finished; no permit was consumed.
    Finished,
}

/// A [`Connection`] that parks before every statement until granted.
pub struct GatedConn {
    conn: Connection,
    gate: Arc<Gate>,
    last_blocked: bool,
}

impl GatedConn {
    /// Park until the driver grants a permit.
    fn await_permit(&mut self) {
        let mut st = self.gate.state.lock();
        *st = GateState::AwaitingPermit {
            blocked: self.last_blocked,
        };
        self.gate.to_driver.notify_all();
        while *st != GateState::PermitGranted {
            self.gate.to_session.wait(&mut st);
        }
        *st = GateState::Running;
    }
}

impl SqlConn for GatedConn {
    fn exec(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        loop {
            self.await_permit();
            match self.conn.try_execute(sql) {
                Err(DbError::WouldBlock { .. }) => {
                    self.last_blocked = true;
                }
                other => {
                    self.last_blocked = false;
                    return other;
                }
            }
        }
    }

    fn set_api(&mut self, name: &str, invocation: u64) {
        self.conn.set_api(name, invocation);
    }

    fn session(&self) -> u64 {
        self.conn.session_id()
    }

    fn obs(&self) -> acidrain_db::Obs {
        self.conn.obs().clone()
    }
}

/// Marks the gate finished when the session thread exits (normally or by
/// panic), so the driver never hangs.
struct FinishGuard(Arc<Gate>);

impl Drop for FinishGuard {
    fn drop(&mut self) {
        let mut st = self.0.state.lock();
        *st = GateState::Finished;
        self.0.to_driver.notify_all();
    }
}

/// Driver handle for stepping sessions one statement at a time.
pub struct Stepper {
    gates: Vec<Arc<Gate>>,
}

impl Stepper {
    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the stepper has no sessions.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Whether session `i` has finished its task.
    pub fn finished(&self, i: usize) -> bool {
        *self.gates[i].state.lock() == GateState::Finished
    }

    /// Grant one permit to session `i` and wait for the outcome.
    pub fn step(&mut self, i: usize) -> StepOutcome {
        let gate = &self.gates[i];
        let mut st = gate.state.lock();
        loop {
            match *st {
                GateState::AwaitingPermit { .. } => break,
                GateState::Finished => return StepOutcome::Finished,
                _ => gate.to_driver.wait(&mut st),
            }
        }
        *st = GateState::PermitGranted;
        gate.to_session.notify_all();
        loop {
            match *st {
                GateState::AwaitingPermit { blocked } => {
                    return if blocked {
                        StepOutcome::Blocked
                    } else {
                        StepOutcome::Executed
                    };
                }
                GateState::Finished => return StepOutcome::Executed,
                _ => gate.to_driver.wait(&mut st),
            }
        }
    }

    /// Step session `i` until it has *executed* `n` statements (re-granting
    /// through blocks by letting other sessions run one statement). Returns
    /// the number actually executed (less than `n` if the session
    /// finished).
    pub fn run_statements(&mut self, i: usize, n: usize) -> usize {
        let mut executed = 0;
        let mut stall = 0;
        while executed < n && !self.finished(i) {
            match self.step(i) {
                StepOutcome::Executed => {
                    executed += 1;
                    stall = 0;
                }
                StepOutcome::Finished => break,
                StepOutcome::Blocked => {
                    stall += 1;
                    assert!(stall < 10_000, "session {i} is stuck on a lock");
                    // Let someone else make progress to release the lock.
                    let others: Vec<usize> = (0..self.len())
                        .filter(|j| *j != i && !self.finished(*j))
                        .collect();
                    for j in others {
                        if self.step(j) == StepOutcome::Executed {
                            break;
                        }
                    }
                }
            }
        }
        executed
    }

    /// Run session `i` to completion, stepping other sessions through its
    /// lock waits.
    pub fn run_to_completion(&mut self, i: usize) {
        let mut stall = 0;
        while !self.finished(i) {
            match self.step(i) {
                StepOutcome::Executed => stall = 0,
                StepOutcome::Finished => break,
                StepOutcome::Blocked => {
                    stall += 1;
                    assert!(stall < 10_000, "session {i} is stuck on a lock");
                    let others: Vec<usize> = (0..self.len())
                        .filter(|j| *j != i && !self.finished(*j))
                        .collect();
                    for j in others {
                        if self.step(j) == StepOutcome::Executed {
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Run every remaining session to completion, round-robin.
    pub fn drain(&mut self) {
        let mut stall = 0;
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for i in 0..self.len() {
                if self.finished(i) {
                    continue;
                }
                all_done = false;
                if self.step(i) == StepOutcome::Executed {
                    progressed = true;
                }
            }
            if all_done {
                return;
            }
            if progressed {
                stall = 0;
            } else {
                stall += 1;
                assert!(stall < 10_000, "all sessions are stuck");
            }
        }
    }

    /// Alternate sessions statement-by-statement (lockstep) until all
    /// finish.
    pub fn lockstep(&mut self) {
        self.drain();
    }
}

/// Run `tasks` concurrently with the interleaving dictated by `schedule`.
/// Any sessions still unfinished when `schedule` returns are drained.
/// Returns the tasks' results in order.
pub fn run_deterministic<T, F>(
    db: &Arc<Database>,
    tasks: Vec<F>,
    schedule: impl FnOnce(&mut Stepper),
) -> Vec<T>
where
    T: Send,
    F: FnOnce(&mut dyn SqlConn) -> T + Send,
{
    let conns = tasks.iter().map(|_| db.connect()).collect();
    run_deterministic_on(conns, tasks, schedule)
}

/// [`run_deterministic`] over caller-built connections — one per task,
/// in order. This is how the replay driver applies per-session isolation
/// overrides ([`Connection::set_isolation`]) before the interleaving
/// starts.
pub fn run_deterministic_on<T, F>(
    conns: Vec<Connection>,
    tasks: Vec<F>,
    schedule: impl FnOnce(&mut Stepper),
) -> Vec<T>
where
    T: Send,
    F: FnOnce(&mut dyn SqlConn) -> T + Send,
{
    assert_eq!(
        conns.len(),
        tasks.len(),
        "one connection per task, in task order"
    );
    let gates: Vec<Arc<Gate>> = tasks.iter().map(|_| Gate::new()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .zip(conns)
            .zip(&gates)
            .map(|((task, conn), gate)| {
                let mut gc = GatedConn {
                    conn,
                    gate: Arc::clone(gate),
                    last_blocked: false,
                };
                scope.spawn(move || {
                    let _guard = FinishGuard(Arc::clone(&gc.gate));
                    task(&mut gc)
                })
            })
            .collect();

        let mut stepper = Stepper {
            gates: gates.clone(),
        };
        // Wait until every session is parked at its first statement (or
        // already finished) before handing control to the schedule.
        for gate in &stepper.gates {
            let mut st = gate.state.lock();
            while matches!(*st, GateState::Running | GateState::PermitGranted) {
                gate.to_driver.wait(&mut st);
            }
        }
        schedule(&mut stepper);
        stepper.drain();
        handles
            .into_iter()
            .map(|h| h.join().expect("session task panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acidrain_db::{IsolationLevel, Value};
    use acidrain_sql::schema::{ColumnDef, ColumnType, Schema, TableSchema};

    fn db() -> Arc<Database> {
        let schema = Schema::new().with_table(TableSchema::new(
            "counter",
            vec![
                ColumnDef::new("id", ColumnType::Int).unique(),
                ColumnDef::new("n", ColumnType::Int),
            ],
        ));
        let db = Database::new(schema, IsolationLevel::ReadCommitted);
        db.seed("counter", vec![vec![Value::Int(1), Value::Int(0)]])
            .unwrap();
        db
    }

    fn read_then_write(conn: &mut dyn SqlConn) -> i64 {
        let n = conn
            .exec("SELECT n FROM counter WHERE id = 1")
            .unwrap()
            .scalar_i64()
            .unwrap();
        conn.exec(&format!("UPDATE counter SET n = {} WHERE id = 1", n + 1))
            .unwrap();
        n
    }

    #[test]
    fn serial_schedule_preserves_both_increments() {
        let db = db();
        let results = run_deterministic(
            &db,
            vec![read_then_write, read_then_write],
            |s: &mut Stepper| {
                s.run_to_completion(0);
                s.run_to_completion(1);
            },
        );
        assert_eq!(results, vec![0, 1]);
        assert_eq!(db.table_rows("counter").unwrap()[0][1], Value::Int(2));
    }

    #[test]
    fn racing_schedule_loses_an_update() {
        let db = db();
        // Both read before either writes: the Figure-1 interleaving.
        let results = run_deterministic(
            &db,
            vec![read_then_write, read_then_write],
            |s: &mut Stepper| {
                s.run_statements(0, 1); // A reads 0
                s.run_statements(1, 1); // B reads 0
                s.run_to_completion(0);
                s.run_to_completion(1);
            },
        );
        assert_eq!(results, vec![0, 0]);
        assert_eq!(
            db.table_rows("counter").unwrap()[0][1],
            Value::Int(1),
            "one increment is lost, deterministically"
        );
    }

    #[test]
    fn determinism_across_runs() {
        for _ in 0..5 {
            let db = db();
            run_deterministic(
                &db,
                vec![read_then_write, read_then_write],
                |s: &mut Stepper| {
                    s.run_statements(0, 1);
                    s.run_statements(1, 1);
                },
            );
            assert_eq!(db.table_rows("counter").unwrap()[0][1], Value::Int(1));
        }
    }

    #[test]
    fn blocked_sessions_are_reported_and_recover() {
        let db = db();
        let txn_writer = |conn: &mut dyn SqlConn| -> i64 {
            conn.exec("BEGIN").unwrap();
            conn.exec("UPDATE counter SET n = n + 10 WHERE id = 1")
                .unwrap();
            conn.exec("COMMIT").unwrap();
            0
        };
        let results = run_deterministic(&db, vec![txn_writer, txn_writer], |s: &mut Stepper| {
            s.run_statements(0, 2); // A: BEGIN + UPDATE (holds the row lock)
            s.run_statements(1, 1); // B: BEGIN
            assert_eq!(
                s.step(1),
                StepOutcome::Blocked,
                "B's update must block on A"
            );
            // Finish A; B can proceed afterwards (drain handles it).
        });
        assert_eq!(results.len(), 2);
        assert_eq!(db.table_rows("counter").unwrap()[0][1], Value::Int(20));
    }

    #[test]
    fn zero_statement_tasks_finish_cleanly() {
        let db = db();
        let results = run_deterministic(
            &db,
            vec![|_c: &mut dyn SqlConn| 42, |_c: &mut dyn SqlConn| 43],
            |_s: &mut Stepper| {},
        );
        assert_eq!(results, vec![42, 43]);
    }

    #[test]
    fn step_on_finished_session_reports_finished() {
        let db = db();
        run_deterministic(&db, vec![|_c: &mut dyn SqlConn| 0i64], |s: &mut Stepper| {
            assert_eq!(s.step(0), StepOutcome::Finished);
            assert!(s.finished(0));
        });
    }
}
