//! ACIDRain attack execution: scripted pen-test trace generation, 2AD
//! witness-derived schedules, concurrent attack runs, and invariant
//! verification — the full Figure-2 workflow from public API calls to a
//! confirmed exploit.

use std::sync::Arc;

use acidrain_apps::observed_request;
use acidrain_apps::prelude::*;
use acidrain_core::{Analyzer, ColumnTarget};
use acidrain_db::{Database, FaultConfig, FaultStats, IsolationLevel, LogEntry};

use crate::sched::{run_deterministic, Stepper};

/// The three target invariants (paper §4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Voucher usage stays within its limit (Table 3, I1).
    Voucher,
    /// Stock sold never exceeds stock on hand (Table 3, I2).
    Inventory,
    /// Order totals match their items (Table 3, I3).
    Cart,
}

impl Invariant {
    /// All three target invariants, in Table-5 column order.
    pub const ALL: [Invariant; 3] = [Invariant::Voucher, Invariant::Inventory, Invariant::Cart];

    /// The schema targets used for the paper's filtered analysis (§4.2.3).
    pub fn targets(self) -> Vec<ColumnTarget> {
        match self {
            Invariant::Voucher => vec![
                ColumnTarget::table("vouchers"),
                ColumnTarget::table("voucher_applications"),
            ],
            Invariant::Inventory => vec![
                ColumnTarget::column("products", "stock"),
                ColumnTarget::table("stock_adjustments"),
            ],
            Invariant::Cart => vec![ColumnTarget::table("cart_items")],
        }
    }

    /// Check this invariant over the store's committed state.
    pub fn check(self, db: &Database, app: &dyn ShopApp) -> Result<(), Violation> {
        match self {
            Invariant::Voucher => check_voucher(db),
            Invariant::Inventory => check_inventory(db, app.stock_model()),
            Invariant::Cart => check_cart(db),
        }
    }

    /// The feature gate that decides NF / BF / NDB cells.
    pub fn feature(self, app: &dyn ShopApp) -> FeatureStatus {
        match self {
            Invariant::Voucher => app.voucher_support(),
            Invariant::Inventory => app.inventory_support(),
            Invariant::Cart => app.cart_support(),
        }
    }
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Invariant::Voucher => "voucher",
            Invariant::Inventory => "inventory",
            Invariant::Cart => "cart",
        })
    }
}

/// Quantity of laptops per cart in the inventory attack: two checkouts of
/// 3 each against a stock of 5 — individually fine, jointly overselling.
/// Shared with the endpoint registry so the static audit records the same
/// probe trace this module replays.
use acidrain_apps::endpoints::INVENTORY_QTY;

/// Run the scripted penetration-test session for `invariant` against a
/// fresh store and return the tagged query log (paper §3.1.1: "a 2AD
/// penetration tester could add items to the store cart, provide address
/// and payment details, then place an order").
pub fn probe_trace(
    app: &dyn ShopApp,
    invariant: Invariant,
    isolation: IsolationLevel,
) -> AppResult<Vec<LogEntry>> {
    app.reset_session_state();
    let db = app.make_store(isolation);
    probe_trace_on(app, &db, invariant)
}

/// [`probe_trace`] against a caller-provided store — the caller controls
/// the store's fault configuration and can inspect its [`FaultStats`]
/// after a failed probe.
pub fn probe_trace_on(
    app: &dyn ShopApp,
    db: &Arc<Database>,
    invariant: Invariant,
) -> AppResult<Vec<LogEntry>> {
    let mut conn = db.connect();
    match invariant {
        Invariant::Voucher => {
            conn.set_api("add_to_cart", 0);
            observed_request(&mut conn, |c| app.add_to_cart(c, 1, PEN, 1))?;
            conn.set_api("checkout", 0);
            observed_request(&mut conn, |c| {
                app.checkout(c, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            })?;
        }
        Invariant::Inventory => {
            conn.set_api("add_to_cart", 0);
            observed_request(&mut conn, |c| app.add_to_cart(c, 1, LAPTOP, INVENTORY_QTY))?;
            conn.set_api("checkout", 0);
            observed_request(&mut conn, |c| app.checkout(c, 1, &CheckoutRequest::plain()))?;
        }
        Invariant::Cart => {
            conn.set_api("add_to_cart", 0);
            observed_request(&mut conn, |c| app.add_to_cart(c, 1, PEN, 1))?;
            conn.set_api("checkout", 0);
            observed_request(&mut conn, |c| app.checkout(c, 1, &CheckoutRequest::plain()))?;
        }
    }
    drop(conn);
    Ok(db.log_entries())
}

/// Locate `seq` in the probe log: which API invocation it belongs to and
/// its statement index within that invocation.
pub fn statement_index(log: &[LogEntry], seq: u64) -> Option<(String, usize)> {
    let entry = log.iter().find(|e| e.seq == seq)?;
    let tag = entry.api.clone()?;
    let index = log
        .iter()
        .filter(|e| e.api.as_ref() == Some(&tag) && e.seq < seq)
        .count();
    Some((tag.name, index))
}

/// A boxed request closure run by the attack scheduler.
type RequestTask<'a> = Box<dyn FnOnce(&mut dyn SqlConn) -> bool + Send + 'a>;

/// Result of one concurrent attack run.
#[derive(Debug)]
pub struct AttackOutcome {
    /// The invariant violation the attack produced, if any.
    pub violation: Option<Violation>,
    /// Whether each concurrent request completed successfully.
    pub request_ok: Vec<bool>,
}

/// Execute the attack for `invariant` with session 0 paused after its
/// first `k + 1` statements (i.e. just after executing the witness's o₁),
/// while the second session runs to completion in the gap — the Lemma-4
/// schedule realized against the live store.
pub fn run_attack(
    app: &dyn ShopApp,
    invariant: Invariant,
    isolation: IsolationLevel,
    k: usize,
) -> AttackOutcome {
    let db = app.make_store(isolation);
    setup_attack(app, &db, invariant);

    let schedule = |s: &mut Stepper| {
        s.run_statements(0, k + 1);
        s.run_to_completion(1);
    };

    let request_ok: Vec<bool> = match invariant {
        Invariant::Voucher => {
            let tasks: Vec<RequestTask<'_>> = vec![
                Box::new(|conn: &mut dyn SqlConn| {
                    app.checkout(conn, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
                        .is_ok()
                }),
                Box::new(|conn: &mut dyn SqlConn| {
                    app.checkout(conn, 2, &CheckoutRequest::with_voucher(VOUCHER_CODE))
                        .is_ok()
                }),
            ];
            run_deterministic(&db, tasks, schedule)
        }
        Invariant::Inventory => {
            let tasks: Vec<RequestTask<'_>> = vec![
                Box::new(|conn: &mut dyn SqlConn| {
                    app.checkout(conn, 1, &CheckoutRequest::plain()).is_ok()
                }),
                Box::new(|conn: &mut dyn SqlConn| {
                    app.checkout(conn, 2, &CheckoutRequest::plain()).is_ok()
                }),
            ];
            run_deterministic(&db, tasks, schedule)
        }
        Invariant::Cart => {
            let tasks: Vec<RequestTask<'_>> = vec![
                Box::new(|conn: &mut dyn SqlConn| {
                    app.checkout(conn, 1, &CheckoutRequest::plain()).is_ok()
                }),
                Box::new(|conn: &mut dyn SqlConn| app.add_to_cart(conn, 1, LAPTOP, 1).is_ok()),
            ];
            if app.session_locked() {
                // Both requests share the victim's session (the cart is
                // session state), and PHP session locking serializes them:
                // execute back-to-back instead of interleaved.
                run_deterministic(&db, tasks, |s: &mut Stepper| {
                    s.run_to_completion(0);
                    s.run_to_completion(1);
                })
            } else {
                run_deterministic(&db, tasks, schedule)
            }
        }
    };

    AttackOutcome {
        violation: invariant.check(&db, app).err(),
        request_ok,
    }
}

/// Serial control run (paper §4.2.4: "we further ensured that each
/// behavior was indeed unexpected by verifying the attack was not possible
/// under a serial execution"): the same requests, one after another.
pub fn run_serial_control(
    app: &dyn ShopApp,
    invariant: Invariant,
    isolation: IsolationLevel,
) -> AttackOutcome {
    let db = app.make_store(isolation);
    setup_attack(app, &db, invariant);
    let mut conn = db.connect();
    let request_ok = match invariant {
        Invariant::Voucher => vec![
            observed_request(&mut conn, |c| {
                app.checkout(c, 1, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            })
            .is_ok(),
            observed_request(&mut conn, |c| {
                app.checkout(c, 2, &CheckoutRequest::with_voucher(VOUCHER_CODE))
            })
            .is_ok(),
        ],
        Invariant::Inventory => vec![
            observed_request(&mut conn, |c| app.checkout(c, 1, &CheckoutRequest::plain())).is_ok(),
            observed_request(&mut conn, |c| app.checkout(c, 2, &CheckoutRequest::plain())).is_ok(),
        ],
        Invariant::Cart => vec![
            observed_request(&mut conn, |c| app.checkout(c, 1, &CheckoutRequest::plain())).is_ok(),
            observed_request(&mut conn, |c| app.add_to_cart(c, 1, LAPTOP, 1)).is_ok(),
        ],
    };
    drop(conn);
    AttackOutcome {
        violation: invariant.check(&db, app).err(),
        request_ok,
    }
}

/// Serial attack setup: fill the carts the concurrent requests will use.
fn setup_attack(app: &dyn ShopApp, db: &Arc<Database>, invariant: Invariant) {
    app.reset_session_state();
    let mut conn = db.connect();
    match invariant {
        Invariant::Voucher => {
            // Disjoint products: the two checkouts share only the voucher
            // state, so nothing else (e.g. a stock row write conflict)
            // interferes with the double-spend.
            app.add_to_cart(&mut conn, 1, PEN, 1).expect("setup");
            app.add_to_cart(&mut conn, 2, LAPTOP, 1).expect("setup");
        }
        Invariant::Inventory => {
            app.add_to_cart(&mut conn, 1, LAPTOP, INVENTORY_QTY)
                .expect("setup");
            app.add_to_cart(&mut conn, 2, LAPTOP, INVENTORY_QTY)
                .expect("setup");
        }
        Invariant::Cart => {
            app.add_to_cart(&mut conn, 1, PEN, 1).expect("setup");
        }
    }
    // Setup traffic must not pollute the attack analysis or the log-based
    // diagnostics.
    db.take_log();
}

/// One audited Table-5 cell: the computed result plus diagnostics.
#[derive(Debug)]
pub struct CellReport {
    /// Application under audit.
    pub app: &'static str,
    /// Invariant column of the cell.
    pub invariant: Invariant,
    /// The verdict (vulnerable / safe / NF / BF / NDB).
    pub cell: Cell,
    /// Witnesses 2AD reported for this invariant's target columns.
    pub witnesses: usize,
    /// How many witnesses were attacked before the verdict.
    pub attacks: usize,
    /// The confirming violation, when vulnerable.
    pub violation: Option<Violation>,
}

/// Where a degraded audit gave up (see [`AuditDegraded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditStage {
    /// The probe session itself failed (e.g. a fault surfaced through the
    /// application's error handling).
    Probe,
    /// The probe log could not be lifted into an abstract history.
    Analysis,
    /// The serial control run violated the invariant — the "attack" is
    /// not concurrency-dependent, so no verdict can be issued.
    SerialControl,
}

/// A partial audit result: instead of panicking mid-pipeline, the audit
/// reports which stage failed, why, and what the fault injector had done
/// to the probe store by that point.
#[derive(Debug, Clone)]
pub struct AuditDegraded {
    /// Which pipeline stage gave up.
    pub stage: AuditStage,
    /// What went wrong, verbatim.
    pub error: String,
    /// Injector activity on the probe store (all zeros when faults were
    /// not enabled).
    pub fault_stats: FaultStats,
}

impl std::fmt::Display for AuditDegraded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "audit degraded at {:?}: {} ({} injected faults)",
            self.stage,
            self.error,
            self.fault_stats.total_injected()
        )
    }
}

impl std::error::Error for AuditDegraded {}

/// Audit one application × invariant cell end-to-end: probe, analyze
/// (refined, targeted), attack each witness until one verifies, classify.
/// Panics if any pipeline stage fails; use [`try_audit_cell`] for
/// graceful degradation.
pub fn audit_cell(
    app: &dyn ShopApp,
    invariant: Invariant,
    isolation: IsolationLevel,
    max_attempts: usize,
) -> CellReport {
    match try_audit_cell(
        app,
        invariant,
        isolation,
        max_attempts,
        &FaultConfig::disabled(),
    ) {
        Ok(report) => report,
        Err(degraded) => panic!("{}: {degraded}", app.name()),
    }
}

/// [`audit_cell`] with graceful degradation: pipeline failures come back
/// as [`AuditDegraded`] (stage + cause + fault counts) instead of
/// panicking, and `faults` is enabled on the probe store so the audit
/// front end can be exercised under injected chaos. The attack replays
/// themselves always run fault-free — the witness-derived schedule must
/// stay deterministic for the verdict to mean anything.
pub fn try_audit_cell(
    app: &dyn ShopApp,
    invariant: Invariant,
    isolation: IsolationLevel,
    max_attempts: usize,
    faults: &FaultConfig,
) -> Result<CellReport, AuditDegraded> {
    // Feature gates first (the NF / BF / NDB cells).
    match invariant.feature(app) {
        FeatureStatus::NoFeature => return Ok(gated(app, invariant, Cell::NoFeature)),
        FeatureStatus::Broken => return Ok(gated(app, invariant, Cell::Broken)),
        FeatureStatus::NotDbBacked => return Ok(gated(app, invariant, Cell::NotDbBacked)),
        FeatureStatus::Supported => {}
    }

    app.reset_session_state();
    let probe_db = app.make_store(isolation);
    if faults.any_faults() || faults.max_latency.is_some() {
        probe_db.enable_faults(faults.clone());
    }
    let probe_result = probe_trace_on(app, &probe_db, invariant);
    let fault_stats = probe_db.fault_stats();
    let log = probe_result.map_err(|e| AuditDegraded {
        stage: AuditStage::Probe,
        error: e.to_string(),
        fault_stats,
    })?;
    let analyzer = Analyzer::from_log(&log, &app.schema()).map_err(|e| AuditDegraded {
        stage: AuditStage::Analysis,
        error: e.to_string(),
        fault_stats,
    })?;
    let mut config = acidrain_core::RefinementConfig::at_isolation(isolation);
    if app.session_locked() {
        config = config.with_session_locking(
            ["add_to_cart".to_string(), "checkout".to_string()],
            ["cart_items".to_string()],
        );
    }
    let report = analyzer.analyze_targeted(&config, &invariant.targets());
    let witnesses = report.findings.len();

    let mut attacks = 0;
    for finding in report.findings.iter() {
        if attacks >= max_attempts {
            break;
        }
        // Only seeds inside checkout drive our attack scripts.
        if finding.api != "checkout" {
            continue;
        }
        let Some(seq) = analyzer.history().op(finding.witness.o1).log_seq else {
            continue;
        };
        let Some((api, k)) = statement_index(&log, seq) else {
            continue;
        };
        if api != "checkout" {
            continue;
        }
        attacks += 1;
        let outcome = run_attack(app, invariant, isolation, k);
        if let Some(violation) = outcome.violation {
            // Confirm the serial control preserves the invariant (C1).
            let control = run_serial_control(app, invariant, isolation);
            if let Some(control_violation) = control.violation {
                return Err(AuditDegraded {
                    stage: AuditStage::SerialControl,
                    error: format!("serial control violated {invariant}: {control_violation:?}"),
                    fault_stats,
                });
            }
            // Classify the access pattern by the seed operation that
            // touches the invariant's columns (the paper's Table 5 "AP"
            // column describes how the *protected data* is accessed, not
            // whichever operation happened to open the cycle).
            let targets = invariant.targets();
            let o1 = analyzer.history().op(finding.witness.o1);
            let o2 = analyzer.history().op(finding.witness.o2);
            let target_op = if targets.iter().any(|t| t.matches(o1)) {
                o1
            } else {
                o2
            };
            let lost_update = target_op.access == acidrain_sql::AccessKind::KeyEq;
            let level_based = finding.scope == acidrain_core::AnomalyScope::LevelBased;
            let cell = if invariant == Invariant::Cart && app.total_from_request() {
                Cell::VulnStarred {
                    lost_update,
                    level_based,
                }
            } else {
                Cell::Vuln {
                    lost_update,
                    level_based,
                }
            };
            return Ok(CellReport {
                app: app.name(),
                invariant,
                cell,
                witnesses,
                attacks,
                violation: Some(violation),
            });
        }
    }

    Ok(CellReport {
        app: app.name(),
        invariant,
        cell: Cell::Safe,
        witnesses,
        attacks,
        violation: None,
    })
}

fn gated(app: &dyn ShopApp, invariant: Invariant, cell: Cell) -> CellReport {
    CellReport {
        app: app.name(),
        invariant,
        cell,
        witnesses: 0,
        attacks: 0,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ISO: IsolationLevel = IsolationLevel::MySqlRepeatableRead;

    #[test]
    fn probe_traces_are_tagged_and_parse() {
        let app = PrestaShop;
        for invariant in Invariant::ALL {
            let log = probe_trace(&app, invariant, ISO).unwrap();
            assert!(!log.is_empty());
            assert!(log.iter().all(|e| e.api.is_some()));
            Analyzer::from_log(&log, &app.schema()).unwrap();
        }
    }

    #[test]
    fn statement_index_locates_seed() {
        let log = probe_trace(&PrestaShop, Invariant::Voucher, ISO).unwrap();
        // Find the voucher counter read.
        let entry = log
            .iter()
            .find(|e| e.sql.contains("SELECT used FROM vouchers"))
            .unwrap();
        let (api, k) = statement_index(&log, entry.seq).unwrap();
        assert_eq!(api, "checkout");
        assert!(k > 0, "the voucher read is not checkout's first statement");
    }

    #[test]
    fn prestashop_voucher_attack_confirms() {
        // End-to-end: the witness-derived schedule double-spends the
        // voucher under MySQL-flavoured Repeatable Read.
        let report = audit_cell(&PrestaShop, Invariant::Voucher, ISO, 60);
        assert!(report.cell.is_vulnerable(), "{report:?}");
        assert_eq!(report.cell.lost_update(), Some(true));
        assert_eq!(report.cell.level_based(), Some(false));
    }

    #[test]
    fn spree_is_safe_but_witnessed() {
        // Spree's voucher anomaly is triggerable but benign (§4.2.5): 2AD
        // reports witnesses, every attack fails to violate the invariant.
        let report = audit_cell(&Spree, Invariant::Voucher, ISO, 60);
        assert_eq!(report.cell, Cell::Safe, "{report:?}");
        assert!(report.witnesses > 0, "the anomaly itself is real");
        assert!(report.attacks > 0);
    }

    #[test]
    fn spree_inventory_is_safe_and_lock_seed_removed() {
        // The FOR UPDATE refinement removes the level-based
        // (locked-read, update) seed; remaining cross-transaction
        // witnesses fail attack verification, so the cell is safe.
        let report = audit_cell(&Spree, Invariant::Inventory, ISO, 60);
        assert_eq!(report.cell, Cell::Safe, "{report:?}");

        let log = probe_trace(&Spree, Invariant::Inventory, ISO).unwrap();
        let analyzer = Analyzer::from_log(&log, &Spree.schema()).unwrap();
        let findings = analyzer
            .analyze_targeted(
                &acidrain_core::RefinementConfig::at_isolation(ISO),
                &Invariant::Inventory.targets(),
            )
            .findings;
        assert!(
            findings
                .iter()
                .all(|f| f.scope != acidrain_core::AnomalyScope::LevelBased),
            "the locked read-modify-write must not be reported"
        );
    }

    #[test]
    fn feature_gates_short_circuit() {
        assert_eq!(
            audit_cell(&Shopizer, Invariant::Voucher, ISO, 60).cell,
            Cell::NoFeature
        );
        assert_eq!(
            audit_cell(&Broadleaf, Invariant::Inventory, ISO, 60).cell,
            Cell::Broken
        );
        assert_eq!(
            audit_cell(&Saleor::new(), Invariant::Cart, ISO, 60).cell,
            Cell::NotDbBacked
        );
    }

    #[test]
    fn faulty_probe_degrades_instead_of_panicking() {
        let faults = FaultConfig::seeded(7).with_deadlock(1.0);
        let degraded =
            try_audit_cell(&PrestaShop, Invariant::Voucher, ISO, 60, &faults).unwrap_err();
        assert_eq!(degraded.stage, AuditStage::Probe);
        assert!(degraded.fault_stats.injected_deadlocks > 0);
        assert!(degraded.to_string().contains("degraded at Probe"));
    }

    #[test]
    fn try_audit_without_faults_matches_audit_cell() {
        let report = try_audit_cell(
            &PrestaShop,
            Invariant::Voucher,
            ISO,
            60,
            &FaultConfig::disabled(),
        )
        .unwrap();
        assert!(report.cell.is_vulnerable(), "{report:?}");
    }

    #[test]
    fn mild_faults_still_let_the_audit_complete() {
        // A probe under light latency jitter (no abort faults) produces
        // the same verdict as a clean probe.
        let faults = FaultConfig::seeded(11).with_max_latency(std::time::Duration::from_micros(50));
        let report = try_audit_cell(&PrestaShop, Invariant::Voucher, ISO, 60, &faults).unwrap();
        assert!(report.cell.is_vulnerable(), "{report:?}");
    }

    #[test]
    fn serial_controls_hold_for_all_apps() {
        for app in all_apps() {
            for invariant in Invariant::ALL {
                if invariant.feature(app.as_ref()) != FeatureStatus::Supported {
                    continue;
                }
                let control = run_serial_control(app.as_ref(), invariant, ISO);
                assert!(
                    control.violation.is_none(),
                    "{} {invariant}: {:?}",
                    app.name(),
                    control.violation
                );
            }
        }
    }
}
