//! Regenerate the paper's Table 1: the application corpus summary, with
//! this reproduction's measured pen-test trace sizes alongside the
//! paper's.

use acidrain_harness::experiments::{table1, PAPER_DEFAULT_ISOLATION};

fn main() {
    println!("Table 1 — application corpus");
    println!();
    let result = table1::run(PAPER_DEFAULT_ISOLATION);
    print!("{}", result.render());
    println!();
    println!(
        "(deployments/stars/LoC and 'Paper trace' are the paper's Table 1 verbatim; 'Our \
         trace' is the statement count of this reproduction's pen-test session — smaller \
         because the simulated endpoints issue no framework boilerplate)"
    );
}
