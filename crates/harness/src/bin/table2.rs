//! Regenerate the paper's Table 2: anomalies observable under popular
//! engines' default and maximum isolation levels.

use acidrain_harness::experiments::table2;

fn main() {
    println!("Table 2 — level-based anomalies by database isolation level");
    println!("(re-running the full corpus audit at each level; this takes a moment)");
    println!();
    let result = table2::run();
    print!("{}", result.render());
    println!();
    println!("paper reports: MySQL 5 (RC) / 0 (S) / 17; Oracle 5 (RC) / 1 (SI) / 17;");
    println!("               Postgres 5 (RC) / 0 (S) / 17; SAP HANA 5 (RC) / 1 (SI) / 17");
}
