//! Regenerate the paper's worked examples: Figures 1, 3, 4, 5, and 9.

use acidrain_apps::didactic::Bank;
use acidrain_core::RefinementConfig;
use acidrain_db::IsolationLevel;
use acidrain_harness::experiments::figures;

fn main() {
    println!("Figure 1 — concurrent withdraw(99) x2 against balance 100");
    for (label, bank, iso) in [
        (
            "1a unscoped, Serializable",
            Bank::figure_1a(),
            IsolationLevel::Serializable,
        ),
        (
            "1b transaction, ReadCommitted",
            Bank::figure_1b(),
            IsolationLevel::ReadCommitted,
        ),
        (
            "1b transaction, SnapshotIsolation",
            Bank::figure_1b(),
            IsolationLevel::SnapshotIsolation,
        ),
        (
            "fixed (FOR UPDATE), ReadCommitted",
            Bank::fixed(),
            IsolationLevel::ReadCommitted,
        ),
    ] {
        let (balance, successes) = figures::figure1_withdraw(&bank, iso);
        println!(
            "  {label:<36} -> {successes} withdrawals succeeded, final balance {balance}{}",
            if successes == 2 {
                "  (OVERDRAWN: $198 withdrawn)"
            } else {
                ""
            }
        );
    }

    println!();
    println!("Figure 3b — payroll SQL log");
    for entry in figures::figure3_log() {
        println!("  {entry}");
    }

    println!();
    println!("Figure 4 — payroll abstract history");
    let analyzer = figures::figure4_analyzer();
    let stats = analyzer.history().stats();
    println!(
        "  {} operation nodes, {} transaction nodes ({} explicit), {} API nodes, {} edges",
        stats.operation_nodes, stats.txn_nodes, stats.explicit_txns, stats.api_nodes, stats.edges
    );
    let report = analyzer.analyze(&RefinementConfig::none());
    for finding in &report.findings {
        println!("  {}", analyzer.describe(finding));
    }

    println!();
    println!("Figure 5 — witness for the raise_salary/add_employee anomaly");
    let (_, trace) = figures::figure5_witness();
    print!("{trace}");
    let (expected, recorded) = figures::figure5_attack();
    println!(
        "  executed: salary ledger records {recorded} but actual salaries cost {expected} — \
         the new employee was counted but not raised"
    );

    println!();
    println!("Figure 9 — simplified shop abstract history");
    let analyzer = figures::figure9_analyzer();
    let stats = analyzer.history().stats();
    println!(
        "  {} operation nodes, {} transaction nodes, {} API nodes, {} edges",
        stats.operation_nodes, stats.txn_nodes, stats.api_nodes, stats.edges
    );
    let report = analyzer.analyze(&RefinementConfig::none());
    println!(
        "  {} potential anomalies, including:",
        report.finding_count()
    );
    for finding in report.findings.iter().take(4) {
        println!("  {}", analyzer.describe(finding));
    }
}
