//! `repair_adviser` — synthesize a minimal lock/isolation fix for every
//! static 2AD finding and prove it closed twice over: statically (the
//! re-audited repaired trace admits no anomaly) and dynamically (the
//! original Lemma-4 witness, lowered onto the repaired scenario, no
//! longer confirms against the live engine).
//!
//! ```text
//! repair_adviser [options]
//!
//! options:
//!   --app NAME       advise only the named surface (repeatable)
//!   --level LEVEL    advise only at LEVEL: RU, RC, MYSQL-RR, RR, SI, SER
//!                    (repeatable; default all six)
//!   --json FILE      also write the report as JSON to FILE ("-" = stdout)
//!   --quiet          suppress the text report (use with --json)
//! ```
//!
//! Exit status 2 on usage errors, 1 on audit/recording failures, and 3 if
//! the closure gate fails: any **level-based** finding without a closing
//! fix set, or any recommended fix whose post-repair witness replay still
//! came back *confirmed*.

use std::process::exit;
use std::time::Instant;

use acidrain_apps::endpoints::all_surfaces;
use acidrain_db::{IsolationLevel, Obs};
use acidrain_harness::advise_surface;
use acidrain_static::{render_remedy_json, render_remedy_text, RemedyReport};

fn usage() -> ! {
    eprintln!("usage: repair_adviser [--app NAME]... [--level LEVEL]... [--json FILE] [--quiet]");
    exit(2);
}

fn parse_level(s: &str) -> IsolationLevel {
    match s.to_ascii_uppercase().as_str() {
        "RU" => IsolationLevel::ReadUncommitted,
        "RC" => IsolationLevel::ReadCommitted,
        "MYSQL-RR" => IsolationLevel::MySqlRepeatableRead,
        "RR" => IsolationLevel::RepeatableRead,
        "SI" => IsolationLevel::SnapshotIsolation,
        "SER" => IsolationLevel::Serializable,
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut apps: Vec<String> = Vec::new();
    let mut levels: Vec<IsolationLevel> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut quiet = false;

    let mut i = 0;
    while i < args.len() {
        let next = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--app" => {
                apps.push(next(i));
                i += 1;
            }
            "--level" => {
                levels.push(parse_level(&next(i)));
                i += 1;
            }
            "--json" => {
                json_path = Some(next(i));
                i += 1;
            }
            "--quiet" => quiet = true,
            _ => usage(),
        }
        i += 1;
    }
    if levels.is_empty() {
        levels = IsolationLevel::ALL.to_vec();
    }

    let start = Instant::now();
    let mut surfaces = all_surfaces();
    if !apps.is_empty() {
        surfaces.retain(|s| apps.iter().any(|a| a == &s.app));
        if surfaces.is_empty() {
            eprintln!("repair_adviser: no surface matches {apps:?}");
            exit(2);
        }
    }

    let obs = Obs::new();
    obs.enable();
    let mut advised = Vec::with_capacity(surfaces.len());
    for surface in &surfaces {
        match advise_surface(surface, &levels, &obs) {
            Ok(remedies) => advised.push(remedies),
            Err(e) => {
                eprintln!("repair_adviser: {e}");
                exit(1);
            }
        }
    }
    let report = RemedyReport { apps: advised };
    let elapsed = start.elapsed();

    if let Some(path) = &json_path {
        let json = render_remedy_json(&report);
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, json) {
            eprintln!("repair_adviser: writing {path}: {e}");
            exit(1);
        }
    }
    if !quiet {
        print!("{}", render_remedy_text(&report));
        let counters = obs.counters();
        println!(
            "\n{} surfaces, {} candidates tried, {} closures, {} post-fix replays, advised in {:.2?}",
            report.apps.len(),
            counters.repair_candidates,
            counters.repair_closures,
            counters.repair_replays,
            elapsed
        );
    }

    let unclosed = report.unclosed_level_based();
    let confirmed = report.confirmed_after_fix();
    if !unclosed.is_empty() || !confirmed.is_empty() {
        if !unclosed.is_empty() {
            eprintln!(
                "repair_adviser: {} level-based findings have NO closing fix:",
                unclosed.len()
            );
            for (app, level, o) in unclosed {
                eprintln!(
                    "  {app} @ {}: {} on {} (API {})",
                    level.name(),
                    o.finding.pattern,
                    o.finding.table,
                    o.finding.api
                );
            }
        }
        if !confirmed.is_empty() {
            eprintln!(
                "repair_adviser: {} recommended fixes still CONFIRMED on replay:",
                confirmed.len()
            );
            for (app, level, o) in confirmed {
                eprintln!(
                    "  {app} @ {}: {} on {} (API {})",
                    level.name(),
                    o.finding.pattern,
                    o.finding.table,
                    o.finding.api
                );
            }
        }
        exit(3);
    }
}
