//! `witness_replay` — execute every static 2AD finding against the live
//! engine and classify it: **confirmed** (outcome diverges from every
//! serial execution), **blocked** (the engine refused the interleaving at
//! that level), or **inconclusive** (not realizable, or serially
//! equivalent).
//!
//! ```text
//! witness_replay [options]
//!
//! options:
//!   --app NAME       replay only the named surface (repeatable)
//!   --level LEVEL    replay only at LEVEL: RU, RC, MYSQL-RR, RR, SI, SER
//!                    (repeatable; default all six)
//!   --json FILE      also write the report as JSON to FILE ("-" = stdout)
//!   --quiet          suppress the text report (use with --json)
//! ```
//!
//! Exit status 2 on usage errors, 1 on audit/recording failures, and 3 if
//! any **level-based** anomaly is *confirmed* at Serializable — a
//! confirmed level-based anomaly there means the engine failed to
//! serialize, which is an engine bug, not an application one.

use std::process::exit;
use std::time::Instant;

use acidrain_apps::endpoints::all_surfaces;
use acidrain_db::IsolationLevel;
use acidrain_harness::replay_surface;
use acidrain_static::{render_replay_json, render_replay_text, ReplayReport};

fn usage() -> ! {
    eprintln!("usage: witness_replay [--app NAME]... [--level LEVEL]... [--json FILE] [--quiet]");
    exit(2);
}

fn parse_level(s: &str) -> IsolationLevel {
    match s.to_ascii_uppercase().as_str() {
        "RU" => IsolationLevel::ReadUncommitted,
        "RC" => IsolationLevel::ReadCommitted,
        "MYSQL-RR" => IsolationLevel::MySqlRepeatableRead,
        "RR" => IsolationLevel::RepeatableRead,
        "SI" => IsolationLevel::SnapshotIsolation,
        "SER" => IsolationLevel::Serializable,
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut apps: Vec<String> = Vec::new();
    let mut levels: Vec<IsolationLevel> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut quiet = false;

    let mut i = 0;
    while i < args.len() {
        let next = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--app" => {
                apps.push(next(i));
                i += 1;
            }
            "--level" => {
                levels.push(parse_level(&next(i)));
                i += 1;
            }
            "--json" => {
                json_path = Some(next(i));
                i += 1;
            }
            "--quiet" => quiet = true,
            _ => usage(),
        }
        i += 1;
    }
    if levels.is_empty() {
        levels = IsolationLevel::ALL.to_vec();
    }

    let start = Instant::now();
    let mut surfaces = all_surfaces();
    if !apps.is_empty() {
        surfaces.retain(|s| apps.iter().any(|a| a == &s.app));
        if surfaces.is_empty() {
            eprintln!("witness_replay: no surface matches {apps:?}");
            exit(2);
        }
    }

    let mut replayed = Vec::with_capacity(surfaces.len());
    for surface in &surfaces {
        match replay_surface(surface, &levels) {
            Ok(replay) => replayed.push(replay),
            Err(e) => {
                eprintln!("witness_replay: {e}");
                exit(1);
            }
        }
    }
    let report = ReplayReport { apps: replayed };
    let elapsed = start.elapsed();

    if let Some(path) = &json_path {
        let json = render_replay_json(&report);
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, json) {
            eprintln!("witness_replay: writing {path}: {e}");
            exit(1);
        }
    }
    if !quiet {
        print!("{}", render_replay_text(&report));
        println!(
            "\n{} surfaces, {} confirmed / {} blocked / {} inconclusive, replayed in {:.2?}",
            report.apps.len(),
            report.count("confirmed"),
            report.count("blocked"),
            report.count("inconclusive"),
            elapsed
        );
    }

    let ser_failures = report.serializable_level_based_confirmed();
    if !ser_failures.is_empty() {
        eprintln!(
            "witness_replay: {} level-based anomalies CONFIRMED at Serializable:",
            ser_failures.len()
        );
        for o in ser_failures {
            eprintln!(
                "  {} on {} (API {})",
                o.finding.pattern, o.finding.table, o.finding.api
            );
        }
        exit(3);
    }
}
