//! Regenerate the paper's Table 5: the 22-vulnerability matrix.
//!
//! Usage: `cargo run -p acidrain-harness --bin table5 [--isolation <level>]`

use acidrain_db::IsolationLevel;
use acidrain_harness::experiments::{table5, PAPER_DEFAULT_ISOLATION};

fn parse_isolation(s: &str) -> Option<IsolationLevel> {
    Some(match s.to_ascii_lowercase().as_str() {
        "ru" | "read-uncommitted" => IsolationLevel::ReadUncommitted,
        "rc" | "read-committed" => IsolationLevel::ReadCommitted,
        "mysql-rr" | "default" => IsolationLevel::MySqlRepeatableRead,
        "rr" | "repeatable-read" => IsolationLevel::RepeatableRead,
        "si" | "snapshot" => IsolationLevel::SnapshotIsolation,
        "s" | "serializable" => IsolationLevel::Serializable,
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let isolation = match args.iter().position(|a| a == "--isolation") {
        Some(i) => parse_isolation(args.get(i + 1).map(String::as_str).unwrap_or(""))
            .unwrap_or_else(|| {
                eprintln!("unknown isolation level; use ru|rc|mysql-rr|rr|si|s");
                std::process::exit(2);
            }),
        None => PAPER_DEFAULT_ISOLATION,
    };

    println!("Table 5 — ACIDRain vulnerability matrix at {isolation}");
    println!();
    let result = table5::run(isolation);
    print!("{}", result.render());
    println!();
    let (voucher, inventory, cart) = result.per_invariant_counts();
    let (level, scope) = result.level_scope_split();
    println!(
        "vulnerabilities: {} total ({voucher} voucher, {inventory} inventory, {cart} cart; \
         {level} level-based, {scope} scope-based)",
        result.vulnerability_count()
    );
    if isolation == PAPER_DEFAULT_ISOLATION {
        println!(
            "paper reports:   22 total (8 voucher, 9 inventory, 5 cart; 5 level-based, \
             17 scope-based)"
        );
        println!(
            "matrix matches paper cell-for-cell: {}",
            if result.matches_paper() { "YES" } else { "NO" }
        );
    }
}
