//! Regenerate the paper's Table 4: abstract-history sizes and 2AD
//! runtimes per application, plus the §4.2.3 targeted-filtering effect.

use acidrain_harness::experiments::{table4, PAPER_DEFAULT_ISOLATION};

fn main() {
    println!("Table 4 — abstract history sizes and analysis runtimes");
    println!();
    let result = table4::run(PAPER_DEFAULT_ISOLATION);
    print!("{}", result.render());
    println!();
    let (unfiltered, filtered) = result.median_findings();
    println!("median findings: {unfiltered} unfiltered, {filtered} after schema targeting");
    println!("(the paper reports medians of 726 and 37 on its much larger framework traces)");
    println!(
        "every analysis completed in under ten seconds: {}",
        if result.all_under_ten_seconds() {
            "YES (paper: YES)"
        } else {
            "NO (paper: YES)"
        }
    );
}
