//! The §4.2.7 remediation experiment: apply the paper's fixes and re-run
//! the attacks.

use acidrain_harness::experiments::repairs;

fn main() {
    println!("Remediation (§4.2.7): original vs scoped vs scoped+serializable");
    println!("(only applications without internal transaction control can be auto-scoped)");
    println!();
    let result = repairs::run();
    print!("{}", result.render());
    println!();
    println!(
        "full repair eliminates every vulnerability: {}",
        if result.full_repair_is_complete() {
            "YES"
        } else {
            "NO"
        }
    );
}
