//! `twoad` — the standalone 2AD analysis tool, mirroring the paper's
//! prototype (§4.2.3): feed it a SQL query log and a schema, get back the
//! potential ACIDRain anomalies with witness schedules.
//!
//! ```text
//! twoad --schema shop.sql --log trace.log [options]
//!
//! options:
//!   --isolation ru|rc|mysql-rr|rr|si|s   refinement isolation level (default mysql-rr)
//!   --no-refinement                      raw Theorem-1 search
//!   --target table[.column]              restrict to a table/column (repeatable)
//!   --max-concurrency N                  bound witness width (web-server pool size)
//!   --witnesses N                        print N full witness schedules (default 3)
//!   --dot FILE                           write the abstract history as Graphviz
//! ```
//!
//! Log format: one statement per line, optionally prefixed with
//! `[sSESSION api#invocation]`; `#` comments ignored.

use std::process::exit;

use acidrain_core::lift::parse_log_file;
use acidrain_core::{Analyzer, ColumnTarget, RefinementConfig};
use acidrain_db::IsolationLevel;

fn usage() -> ! {
    eprintln!(
        "usage: twoad --schema <file.sql> --log <file.log> [--isolation LEVEL] \
         [--no-refinement] [--target table[.column]]... [--max-concurrency N] [--witnesses N]"
    );
    exit(2);
}

fn parse_isolation(s: &str) -> Option<IsolationLevel> {
    Some(match s.to_ascii_lowercase().as_str() {
        "ru" | "read-uncommitted" => IsolationLevel::ReadUncommitted,
        "rc" | "read-committed" => IsolationLevel::ReadCommitted,
        "mysql-rr" | "default" => IsolationLevel::MySqlRepeatableRead,
        "rr" | "repeatable-read" => IsolationLevel::RepeatableRead,
        "si" | "snapshot" => IsolationLevel::SnapshotIsolation,
        "s" | "serializable" => IsolationLevel::Serializable,
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut schema_path = None;
    let mut log_path = None;
    let mut isolation = Some(IsolationLevel::MySqlRepeatableRead);
    let mut targets: Vec<ColumnTarget> = Vec::new();
    let mut max_concurrency = None;
    let mut witnesses_to_print = 3usize;
    let mut dot_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let next = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--schema" => {
                schema_path = Some(next(i));
                i += 2;
            }
            "--log" => {
                log_path = Some(next(i));
                i += 2;
            }
            "--isolation" => {
                isolation = Some(parse_isolation(&next(i)).unwrap_or_else(|| usage()));
                i += 2;
            }
            "--no-refinement" => {
                isolation = None;
                i += 1;
            }
            "--target" => {
                let t = next(i);
                targets.push(match t.split_once('.') {
                    Some((table, column)) => ColumnTarget::column(table, column),
                    None => ColumnTarget::table(t),
                });
                i += 2;
            }
            "--max-concurrency" => {
                max_concurrency = next(i).parse().ok();
                i += 2;
            }
            "--witnesses" => {
                witnesses_to_print = next(i).parse().unwrap_or(3);
                i += 2;
            }
            "--dot" => {
                dot_path = Some(next(i));
                i += 2;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }

    let (Some(schema_path), Some(log_path)) = (schema_path, log_path) else {
        usage()
    };

    let schema_text = std::fs::read_to_string(&schema_path).unwrap_or_else(|e| {
        eprintln!("cannot read schema {schema_path:?}: {e}");
        exit(1);
    });
    let schema = acidrain_sql::parser::parse_schema(&schema_text).unwrap_or_else(|e| {
        eprintln!("schema error: {e}");
        exit(1);
    });
    let log_text = std::fs::read_to_string(&log_path).unwrap_or_else(|e| {
        eprintln!("cannot read log {log_path:?}: {e}");
        exit(1);
    });
    let entries = parse_log_file(&log_text);
    if entries.is_empty() {
        eprintln!("log {log_path:?} contains no statements");
        exit(1);
    }

    let analyzer = Analyzer::from_log(&entries, &schema).unwrap_or_else(|e| {
        eprintln!("lift error: {e}");
        exit(1);
    });
    let mut config = match isolation {
        Some(level) => RefinementConfig::at_isolation(level),
        None => RefinementConfig::none(),
    };
    config.max_concurrency = max_concurrency;

    if let Some(path) = &dot_path {
        if let Err(e) = std::fs::write(path, acidrain_core::to_dot(analyzer.history())) {
            eprintln!("cannot write {path:?}: {e}");
            exit(1);
        }
        println!("abstract history graph written to {path}");
    }

    let report = if targets.is_empty() {
        analyzer.analyze(&config)
    } else {
        analyzer.analyze_targeted(&config, &targets)
    };

    let stats = report.stats;
    println!(
        "abstract history: {} operation nodes, {} transaction nodes ({} explicit), \
         {} API nodes, {} edges",
        stats.operation_nodes, stats.txn_nodes, stats.explicit_txns, stats.api_nodes, stats.edges
    );
    println!(
        "analysis: {} statements lifted in {:.3} ms, searched in {:.3} ms{}",
        entries.len(),
        report.parse_time.as_secs_f64() * 1e3,
        report.analyze_time.as_secs_f64() * 1e3,
        match isolation {
            Some(level) => format!(", refined at {level}"),
            None => ", unrefined".to_string(),
        }
    );
    println!();

    if report.findings.is_empty() {
        println!("no potential anomalies found");
        return;
    }
    println!(
        "{} potential anomalies (witness pairs):",
        report.findings.len()
    );
    for finding in &report.findings {
        println!("  {}", analyzer.describe(finding));
    }
    for (i, finding) in report.findings.iter().take(witnesses_to_print).enumerate() {
        println!();
        println!("witness #{}: {}", i + 1, analyzer.describe(finding));
        print!("{}", analyzer.witness_trace(finding));
    }
    // Exit code 3 signals findings, for scripting.
    exit(3);
}
