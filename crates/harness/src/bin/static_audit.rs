//! `static_audit` — the execution-free 2AD audit over the whole
//! application registry: corpus, didactic apps, and Flexcoin, at all six
//! isolation levels, with witness provenance down to statement templates.
//!
//! ```text
//! static_audit [options]
//!
//! options:
//!   --app NAME       audit only the named surface (repeatable)
//!   --json FILE      also write the report as JSON to FILE ("-" = stdout)
//!   --quiet          suppress the text report (use with --json)
//! ```
//!
//! No concurrent traffic is executed: each endpoint scenario is recorded
//! in one deterministic solo pass and the 2AD detector explores all
//! pairwise abstract interleavings symbolically.

use std::process::exit;
use std::time::Instant;

use acidrain_apps::endpoints::all_surfaces;
use acidrain_static::{audit_surface, render_json, render_text, StaticAuditReport};

fn usage() -> ! {
    eprintln!("usage: static_audit [--app NAME]... [--json FILE] [--quiet]");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut apps: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut quiet = false;

    let mut i = 0;
    while i < args.len() {
        let next = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--app" => {
                apps.push(next(i));
                i += 1;
            }
            "--json" => {
                json_path = Some(next(i));
                i += 1;
            }
            "--quiet" => quiet = true,
            _ => usage(),
        }
        i += 1;
    }

    let start = Instant::now();
    let mut surfaces = all_surfaces();
    if !apps.is_empty() {
        surfaces.retain(|s| apps.iter().any(|a| a == &s.app));
        if surfaces.is_empty() {
            eprintln!("static_audit: no surface matches {apps:?}");
            exit(2);
        }
    }

    let mut audited = Vec::with_capacity(surfaces.len());
    for surface in &surfaces {
        match audit_surface(surface) {
            Ok(audit) => audited.push(audit),
            Err(e) => {
                eprintln!("static_audit: {e}");
                exit(1);
            }
        }
    }
    let report = StaticAuditReport { apps: audited };
    let elapsed = start.elapsed();

    if let Some(path) = &json_path {
        let json = render_json(&report);
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, json) {
            eprintln!("static_audit: writing {path}: {e}");
            exit(1);
        }
    }
    if !quiet {
        print!("{}", render_text(&report));
        println!(
            "\n{} surfaces, {} findings, audited in {:.2?} (no concurrent execution)",
            report.apps.len(),
            report.finding_count(),
            elapsed
        );
    }
}
