//! Socket-driven chaos: the fault-injection campaign of [`crate::chaos`],
//! mounted over real TCP connections.
//!
//! The in-process chaos runner interleaves requests serially under a
//! seeded shuffle; here the concurrency is real — each session is a
//! thread driving a [`RemoteConn`] against a live wire server, so the
//! interleaving is decided by network and OS scheduling exactly as in the
//! paper's deployment model. On top of the engine's injected faults
//! (deadlocks, write conflicts), the runner can inject the fault class
//! only a network deployment has: clients that vanish mid-transaction.
//! Every such disconnect must be absorbed by the server's abort-on-
//! disconnect path — the report's leak checks (`active_transactions`,
//! `locked_resources` both zero after the run) prove no dropped socket
//! left row locks behind.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use acidrain_apps::prelude::*;
use acidrain_apps::{observed_request, AppError, RetryConfig, RetryConn, RetryPolicy};
use acidrain_core::{Analyzer, RefinementConfig};
use acidrain_db::{DbError, FaultConfig, FaultStats, IsolationLevel, MetricsReport};
use acidrain_net::{RemoteConn, Server, ServerConfig};

use crate::attack::Invariant;
use crate::chaos::{session_script, Request};

/// Configuration for one socket-driven chaos run.
#[derive(Debug, Clone)]
pub struct NetChaosConfig {
    /// Seed for the per-session request mix and retry jitter. The run is
    /// *not* deterministic — real sockets race — but the offered workload
    /// is.
    pub seed: u64,
    /// Fault channels to enable on the served store (its `seed` field is
    /// overridden by the master seed).
    pub faults: FaultConfig,
    /// Client-side retry policy (wrapped around the socket, so retries
    /// replay over the wire like a real application server's would).
    pub policy: RetryPolicy,
    /// Retry budget per request.
    pub max_retries: u32,
    /// Concurrent socket sessions (one thread each).
    pub sessions: usize,
    /// Requests per session.
    pub requests_per_session: usize,
    /// Isolation level every client negotiates via `HELLO`.
    pub isolation: IsolationLevel,
    /// Every Nth request, the session abandons its socket *inside* an
    /// open transaction holding a row lock, then reconnects — the flaky-
    /// client fault. `None` disables.
    pub drop_every: Option<usize>,
    /// Wire-server knobs (admission ceiling, timeouts, worker count).
    pub server: ServerConfig,
}

impl Default for NetChaosConfig {
    fn default() -> Self {
        NetChaosConfig {
            seed: 0,
            faults: FaultConfig::disabled(),
            policy: RetryPolicy::RetryTxn,
            max_retries: 12,
            sessions: 8,
            requests_per_session: 8,
            isolation: IsolationLevel::ReadCommitted,
            drop_every: None,
            server: ServerConfig::default(),
        }
    }
}

/// What a socket-driven chaos run produced. Unlike [`crate::ChaosReport`]
/// this is not run-to-run reproducible — the interleaving is the
/// network's — so it carries leak checks and wire-health counters instead
/// of a state digest.
#[derive(Debug)]
pub struct NetChaosReport {
    /// Requests that completed successfully.
    pub committed: usize,
    /// Requests rejected by application business logic.
    pub rejected: usize,
    /// Requests that failed with a database error even after retries.
    pub failed: usize,
    /// Deliberate mid-transaction socket abandonments.
    pub injected_disconnects: usize,
    /// Wire-protocol violations observed client-side (zero on a healthy
    /// server).
    pub protocol_errors: usize,
    /// Engine-side injected fault totals.
    pub fault_stats: FaultStats,
    /// Per-invariant verdicts over the final committed state (only the
    /// invariants the app supports).
    pub invariant_results: Vec<(Invariant, Option<Violation>)>,
    /// 2AD witnesses found in the run's query log.
    pub witnesses: usize,
    /// Transactions still open after every socket closed (must be 0).
    pub leaked_transactions: usize,
    /// Row locks still held after every socket closed (must be 0).
    pub leaked_locks: usize,
    /// Snapshot pins still registered after every socket closed (must be
    /// 0). A leaked pin is the quiet cousin of a leaked lock: nothing
    /// blocks, but version GC is wedged at that bound forever.
    pub leaked_snapshot_pins: usize,
    /// The server's full metrics report (session/frame/disconnect
    /// counters included).
    pub metrics: MetricsReport,
}

impl NetChaosReport {
    /// Whether every checked invariant held.
    pub fn invariants_held(&self) -> bool {
        self.invariant_results.iter().all(|(_, v)| v.is_none())
    }

    /// Whether the session layer kept its hygiene promises: no leaked
    /// transactions or locks, no wire-protocol violations on either side.
    pub fn clean_wire(&self) -> bool {
        self.leaked_transactions == 0
            && self.leaked_locks == 0
            && self.leaked_snapshot_pins == 0
            && self.protocol_errors == 0
            && self.metrics.counters.net_protocol_errors == 0
    }
}

/// Run the socket-driven chaos workload for `app` and report.
pub fn run_net_chaos(app: &(dyn ShopApp + Sync), config: &NetChaosConfig) -> NetChaosReport {
    app.reset_session_state();
    let db = app.make_store(config.isolation);
    let mut faults = config.faults.clone();
    faults.seed = config.seed;
    db.enable_faults(faults);
    db.enable_metrics();
    let handle = Server::start(Arc::clone(&db), config.server.clone()).expect("start chaos server");
    let addr = handle.addr();

    // Invocation numbers are global per API name (lifting groups log
    // entries by `name#invocation`), shared across the client threads.
    let invocations: Arc<[AtomicU64; 2]> = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);

    let results: Vec<[usize; 5]> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..config.sessions {
            let invocations = Arc::clone(&invocations);
            let obs = db.obs().clone();
            handles.push(scope.spawn(move || {
                let connect = || -> RetryConn<RemoteConn> {
                    let mut conn = RemoteConn::connect(addr)
                        .expect("chaos client connects")
                        .with_obs(obs.clone());
                    conn.set_isolation(config.isolation)
                        .expect("negotiate isolation");
                    RetryConn::new(
                        conn,
                        RetryConfig {
                            policy: config.policy,
                            max_retries: config.max_retries,
                            seed: config.seed ^ s as u64,
                            ..RetryConfig::default()
                        },
                    )
                };
                let mut conn = connect();
                let cart = s as i64 + 1;
                // committed, rejected, failed, disconnects, protocol errors
                let mut counts = [0usize; 5];
                for (i, request) in session_script(s, config.requests_per_session)
                    .into_iter()
                    .enumerate()
                {
                    if config.drop_every.is_some_and(|n| n > 0 && (i + 1) % n == 0) {
                        // The flaky client: open a transaction, take a row
                        // lock, and vanish without ROLLBACK or QUIT. The
                        // server must absorb it via disconnect-abort.
                        let mut raw = conn.into_inner();
                        let _ = raw.exec("BEGIN");
                        let _ = raw.exec(&format!(
                            "UPDATE products SET stock = stock WHERE id = {PEN}"
                        ));
                        drop(raw);
                        counts[3] += 1;
                        conn = connect();
                    }
                    let result = match request {
                        Request::AddToCart { product, qty } => {
                            conn.set_api(
                                "add_to_cart",
                                invocations[0].fetch_add(1, Ordering::Relaxed),
                            );
                            observed_request(&mut conn, |c| app.add_to_cart(c, cart, product, qty))
                                .map(|_| ())
                        }
                        Request::Checkout => {
                            conn.set_api(
                                "checkout",
                                invocations[1].fetch_add(1, Ordering::Relaxed),
                            );
                            observed_request(&mut conn, |c| {
                                app.checkout(c, cart, &CheckoutRequest::plain())
                            })
                            .map(|_| ())
                        }
                    };
                    match result {
                        Ok(()) => counts[0] += 1,
                        Err(AppError::Rejected(_)) | Err(AppError::Unsupported(_)) => {
                            counts[1] += 1
                        }
                        Err(AppError::Db(DbError::Internal(msg)))
                            if msg.starts_with("wire protocol") =>
                        {
                            counts[4] += 1
                        }
                        Err(AppError::Db(_)) => counts[2] += 1,
                    }
                }
                counts
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos client thread"))
            .collect()
    });

    // Every client socket is gone; stop the server so vanished sessions
    // are finalized before the leak checks. The explicit GC pass then
    // publishes the post-run snapshot bound: with every pin released it
    // must reach the commit clock, which makes pin leaks visible in the
    // metrics (`gc_oldest_snapshot` stuck below `commit_clock`), not just
    // in the direct `pinned_snapshots` probe.
    handle.shutdown();
    db.gc();

    let mut totals = [0usize; 5];
    for counts in &results {
        for (t, c) in totals.iter_mut().zip(counts) {
            *t += c;
        }
    }

    let log = db.log_entries();
    let targets: Vec<_> = Invariant::ALL
        .into_iter()
        .flat_map(|inv| inv.targets())
        .collect();
    let witnesses = Analyzer::from_log(&log, &app.schema())
        .map(|a| {
            a.analyze_targeted(&RefinementConfig::at_isolation(config.isolation), &targets)
                .finding_count()
        })
        .unwrap_or(0);
    let invariant_results = Invariant::ALL
        .into_iter()
        .filter(|inv| inv.feature(app) == FeatureStatus::Supported)
        .map(|inv| (inv, inv.check(&db, app).err()))
        .collect();

    NetChaosReport {
        committed: totals[0],
        rejected: totals[1],
        failed: totals[2],
        injected_disconnects: totals[3],
        protocol_errors: totals[4],
        fault_stats: db.fault_stats(),
        invariant_results,
        witnesses,
        leaked_transactions: db.active_transactions(),
        leaked_locks: db.locked_resources(),
        leaked_snapshot_pins: db.pinned_snapshots(),
        metrics: db.metrics_report(),
    }
}

/// Convenience used by tests and examples: the store the run served,
/// rebuilt for post-mortem queries, is not returned — the interesting
/// state is all in the report. This helper just names the default flaky-
/// client campaign.
pub fn flaky_client_campaign(app: &(dyn ShopApp + Sync), seed: u64) -> NetChaosReport {
    run_net_chaos(
        app,
        &NetChaosConfig {
            seed,
            drop_every: Some(3),
            faults: FaultConfig::disabled().with_deadlock(0.05),
            ..NetChaosConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_socket_run_commits_and_leaks_nothing() {
        let report = run_net_chaos(&PrestaShop, &NetChaosConfig::default());
        assert!(report.committed > 0, "{report:?}");
        assert!(report.clean_wire(), "{report:?}");
        assert_eq!(report.metrics.counters.net_accepted, 8, "{report:?}");
    }

    #[test]
    fn flaky_clients_are_absorbed_by_disconnect_abort() {
        let report = flaky_client_campaign(&PrestaShop, 7);
        assert!(report.injected_disconnects > 0, "{report:?}");
        assert!(report.clean_wire(), "{report:?}");
        // Most abandoned sockets die holding an open transaction and are
        // counted as disconnect aborts; a few may race an injected fault
        // that already aborted the transaction before the drop, so the
        // count is bounded, not exact.
        let aborts = report.metrics.counters.net_disconnect_aborts as usize;
        assert!(
            aborts > 0 && aborts <= report.injected_disconnects,
            "disconnect aborts {aborts} vs {} injected: {report:?}",
            report.injected_disconnects
        );
        // The workload still makes progress around the vanishing clients.
        assert!(report.committed > 0, "{report:?}");
    }

    /// Flaky clients at the snapshot-pinning levels: every abandoned
    /// socket's pin must be released, and the post-run GC bound must
    /// reach the commit clock — a wire session that leaked its pin would
    /// leave `gc_oldest_snapshot` wedged below it.
    #[test]
    fn flaky_snapshot_clients_release_their_pins() {
        for level in [
            IsolationLevel::MySqlRepeatableRead,
            IsolationLevel::SnapshotIsolation,
        ] {
            let report = run_net_chaos(
                &PrestaShop,
                &NetChaosConfig {
                    seed: 11,
                    isolation: level,
                    drop_every: Some(2),
                    faults: FaultConfig::disabled().with_deadlock(0.05),
                    ..NetChaosConfig::default()
                },
            );
            assert!(report.injected_disconnects > 0, "{level:?}: {report:?}");
            assert!(report.clean_wire(), "{level:?}: {report:?}");
            assert_eq!(report.leaked_snapshot_pins, 0, "{level:?}: {report:?}");
            assert_eq!(
                report.metrics.gc_oldest_snapshot, report.metrics.commit_clock,
                "{level:?}: GC bound stuck below the clock — a pin leaked: {report:?}"
            );
        }
    }
}
