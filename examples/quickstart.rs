//! Quickstart: detect and execute the paper's Figure-1 overdraft attack.
//!
//! ```text
//! cargo run -p acidrain-harness --example quickstart
//! ```
//!
//! The flow is the full 2AD workflow (paper Figure 2): run the API
//! serially against a live store, lift the SQL log into an abstract
//! history, search it for non-trivial cycles, then realize a witness as a
//! concrete concurrent schedule and watch the invariant break.

use acidrain_apps::didactic::Bank;
use acidrain_apps::SqlConn;
use acidrain_core::{Analyzer, RefinementConfig};
use acidrain_db::IsolationLevel;
use acidrain_harness::sched::{run_deterministic, Stepper};

fn main() {
    // 1. A bank whose withdraw endpoint wraps its logic in a transaction
    //    (Figure 1b) — looks safe, is not.
    let bank = Bank::figure_1b();

    // 2. Trace generation: one serial withdraw against a live store,
    //    logged by the database.
    let db = bank.make_bank(IsolationLevel::ReadCommitted, 100);
    let mut conn = db.connect();
    conn.set_api("withdraw", 0);
    bank.withdraw(&mut conn, 1, 30)
        .expect("serial withdraw succeeds");
    drop(conn);
    let log = db.take_log();
    println!("--- SQL trace of one withdraw(30) ---");
    for entry in &log {
        println!("{entry}");
    }

    // 3. 2AD: lift the log, search for anomalies achievable at the
    //    database's isolation level.
    let analyzer = Analyzer::from_log(&log, &acidrain_apps::didactic::banking_schema())
        .expect("log lifts into a trace");
    let report = analyzer.analyze(&RefinementConfig::at_isolation(
        IsolationLevel::ReadCommitted,
    ));
    println!("\n--- 2AD findings ---");
    for finding in &report.findings {
        println!("{}", analyzer.describe(finding));
    }
    let finding = &report.findings[0];

    // 4. Witness generation: the concrete interleaving that breaks it.
    println!("\n--- witness schedule (Lemma 4) ---");
    print!("{}", analyzer.witness_trace(finding));

    // 5. The ACIDRain attack: two concurrent withdrawals of 99 against a
    //    balance of 100, interleaved per the witness.
    let db = bank.make_bank(IsolationLevel::ReadCommitted, 100);
    let withdraw = |conn: &mut dyn SqlConn| bank.withdraw(conn, 1, 99).is_ok();
    let results = run_deterministic(&db, vec![withdraw, withdraw], |s: &mut Stepper| {
        s.run_statements(0, 2); // BEGIN + read balance
        s.run_statements(1, 2); // BEGIN + read balance (also sees 100)
    });
    let balance = db.table_rows("accounts").unwrap()[0][1].as_i64().unwrap();
    let successes = results.iter().filter(|ok| **ok).count();
    println!("\n--- attack result ---");
    println!("withdrawals succeeded: {successes} (each for $99, balance was $100)");
    println!("final balance: ${balance}");
    assert_eq!(successes, 2, "the overdraft manifests deterministically");
    println!(
        "=> ${} withdrawn from a $100 account: the Figure-1 ACIDRain attack.",
        99 * successes
    );
}
