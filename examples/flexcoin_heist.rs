//! The Flexcoin heist (paper §1): reproduce the March 2014 attack that
//! bankrupted the exchange — concurrent self-transfers duplicate coins
//! before balances are updated, snowballing across wallets until the
//! attacker withdraws more than they ever deposited.
//!
//! ```text
//! cargo run -p acidrain-harness --example flexcoin_heist
//! ```

use acidrain_apps::flexcoin::{check_solvency, exchange_schema, Flexcoin};
use acidrain_apps::SqlConn;
use acidrain_core::{Analyzer, RefinementConfig};
use acidrain_db::IsolationLevel;
use acidrain_harness::sched::{run_deterministic, Stepper};

const WALLET_A: i64 = 2;
const WALLET_B: i64 = 3;

fn main() {
    let exchange = Flexcoin;
    let reserve = 1_000_000;
    let deposit = 100;
    let db = exchange.make_exchange(IsolationLevel::MySqlRepeatableRead, reserve, deposit);

    // Step 0: 2AD on a single serial transfer finds the flaw before we
    // exploit it.
    {
        let mut conn = db.connect();
        conn.set_api("transfer", 0);
        exchange.transfer(&mut conn, WALLET_A, WALLET_B, 1).unwrap();
        conn.clear_api();
        exchange.transfer(&mut conn, WALLET_B, WALLET_A, 1).unwrap();
    }
    let analyzer = Analyzer::from_log(&db.take_log(), &exchange_schema()).unwrap();
    let report = analyzer.analyze(&RefinementConfig::at_isolation(
        IsolationLevel::MySqlRepeatableRead,
    ));
    println!(
        "2AD on one serial transfer: {} potential anomalies, e.g.:",
        report.finding_count()
    );
    if let Some(f) = report.findings.first() {
        println!("  {}", analyzer.describe(f));
    }

    // Step 1+: the snowball. Each round fires W concurrent transfers of
    // wallet A's full balance to wallet B; every transfer reads the same
    // pre-debit balance, so B is credited W times while A is debited to
    // zero ("moving coins before balances were updated").
    let waves = 6;
    let width = 4;
    let mut stolen_source = WALLET_A;
    let mut stolen_dest = WALLET_B;
    for wave in 1..=waves {
        let balance = db.table_rows("wallets").unwrap()[(stolen_source - 1) as usize][2]
            .as_i64()
            .unwrap();
        if balance == 0 {
            break;
        }
        let transfer = |conn: &mut dyn SqlConn| {
            exchange
                .transfer(conn, stolen_source, stolen_dest, balance)
                .is_ok()
        };
        let tasks = vec![transfer; width];
        let results = run_deterministic(&db, tasks, |s: &mut Stepper| {
            // All requests pass the balance check before any debit lands.
            for i in 0..width {
                s.run_statements(i, 1); // read the (still undebited) balance
            }
        });
        let credited = results.iter().filter(|ok| **ok).count() as i64;
        let dest_balance = db.table_rows("wallets").unwrap()[(stolen_dest - 1) as usize][2]
            .as_i64()
            .unwrap();
        println!(
            "wave {wave}: {credited} concurrent transfers of {balance} coins credited — \
             destination wallet now holds {dest_balance}"
        );
        std::mem::swap(&mut stolen_source, &mut stolen_dest);
    }

    // Step 2: cash out everything through the (correctly guarded)
    // withdrawal endpoint.
    let mut conn = db.connect();
    let mut looted = 0;
    for wallet in [WALLET_A, WALLET_B] {
        let coins = db.table_rows("wallets").unwrap()[(wallet - 1) as usize][2]
            .as_i64()
            .unwrap();
        if coins > 0 && exchange.withdraw(&mut conn, wallet, coins).is_ok() {
            looted += coins;
        }
    }
    drop(conn);

    println!();
    println!("attacker deposited: {deposit} coins");
    println!("attacker withdrew:  {looted} coins");
    match check_solvency(&db, reserve + deposit) {
        Err(v) => println!("EXCHANGE INSOLVENT: {v}"),
        Ok(()) => {
            // Withdrawals burned the conjured coins off the books; the
            // theft shows up as loot far exceeding the deposit.
            println!("books balance only because the stolen coins already left the building");
        }
    }
    assert!(looted > deposit, "the snowball must conjure coins");
    println!(
        "=> {}x multiplication of the attacker's stake, purely via concurrent API calls.",
        looted / deposit
    );
}
