//! Audit one eCommerce application end-to-end, the way §4 of the paper
//! audits its corpus: pen-test trace → targeted 2AD → witness-driven
//! attacks → verified Table-5 cells.
//!
//! ```text
//! cargo run -p acidrain-harness --example ecommerce_audit [app-name]
//! ```

use acidrain_apps::prelude::*;
use acidrain_core::Analyzer;
use acidrain_harness::attack::{audit_cell, probe_trace, Invariant};
use acidrain_harness::experiments::{table5, PAPER_DEFAULT_ISOLATION};

fn main() {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Lightning Fast Shop".to_string());
    let apps = all_apps();
    let app = apps
        .iter()
        .find(|a| a.name().eq_ignore_ascii_case(&wanted))
        .unwrap_or_else(|| {
            eprintln!("unknown application {wanted:?}; available:");
            for a in &apps {
                eprintln!("  {}", a.name());
            }
            std::process::exit(2);
        });
    let isolation = PAPER_DEFAULT_ISOLATION;

    println!(
        "=== Auditing {} ({}) at {isolation} ===",
        app.name(),
        app.language()
    );

    for invariant in Invariant::ALL {
        println!("\n--- {invariant} invariant ---");
        if invariant.feature(app.as_ref()) != FeatureStatus::Supported {
            println!(
                "feature status: {:?} — skipped",
                invariant.feature(app.as_ref())
            );
            continue;
        }
        // Show the relevant slice of the pen-test trace.
        let log = probe_trace(app.as_ref(), invariant, isolation).expect("probe");
        println!("pen-test trace: {} statements", log.len());
        let analyzer = Analyzer::from_log(&log, &app.schema()).expect("lift");
        let mut config = acidrain_core::RefinementConfig::at_isolation(isolation);
        if app.session_locked() {
            config = config.with_session_locking(
                ["add_to_cart".to_string(), "checkout".to_string()],
                ["cart_items".to_string()],
            );
        }
        let findings = analyzer.analyze_targeted(&config, &invariant.targets());
        println!("2AD witnesses (targeted): {}", findings.finding_count());
        for finding in findings.findings.iter().take(3) {
            println!("  {}", analyzer.describe(finding));
        }

        let report = audit_cell(app.as_ref(), invariant, isolation, 60);
        println!(
            "verdict: {} (after {} attack attempts)",
            table5::render_cell(report.cell),
            report.attacks
        );
        if let Some(v) = &report.violation {
            println!("confirmed: {v}");
        }
        let expected = expected_row(app.name()).unwrap();
        let expected_cell = match invariant {
            Invariant::Voucher => expected.voucher,
            Invariant::Inventory => expected.inventory,
            Invariant::Cart => expected.cart,
        };
        println!(
            "paper says: {} — {}",
            table5::render_cell(expected_cell),
            if expected_cell == report.cell {
                "MATCH"
            } else {
                "MISMATCH"
            }
        );
    }
}
