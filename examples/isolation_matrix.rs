//! Sweep one attack across every isolation level — the Table-2 question
//! in miniature: which levels admit which anomalies?
//!
//! ```text
//! cargo run -p acidrain-harness --example isolation_matrix
//! cargo run -p acidrain-harness --example isolation_matrix -- --metrics-json
//! cargo run -p acidrain-harness --example isolation_matrix -- --trace
//! ```
//!
//! With `--metrics-json` the example finishes by racing concurrent voucher
//! checkouts against an instrumented store and printing the engine's
//! [`MetricsReport`](acidrain_db::MetricsReport) as JSON — statement/lock
//! latency percentiles, contention counters, per-level commit/abort
//! counts. With `--trace` it also enables span tracing and prints the
//! transaction trace in both plain JSON and `chrome://tracing` form (paste
//! the latter into `chrome://tracing` or Perfetto to see the interleaving).

use std::sync::Arc;

use acidrain_apps::prelude::*;
use acidrain_db::{Database, IsolationLevel};
use acidrain_harness::attack::{audit_cell, Invariant};
use acidrain_harness::experiments::table5::render_cell;
use acidrain_harness::run_concurrent;
use acidrain_obs::{trace_chrome_json, trace_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_json = args.iter().any(|a| a == "--metrics-json");
    let trace = args.iter().any(|a| a == "--trace");

    println!("One cell per (attack, isolation level): does the vulnerability manifest?");
    println!();
    let scenarios: Vec<(&str, Box<dyn ShopApp + Send + Sync>, Invariant)> = vec![
        (
            "Oscar voucher (phantom, level-based)",
            Box::new(Oscar),
            Invariant::Voucher,
        ),
        (
            "Oscar inventory (LU, level-based)",
            Box::new(Oscar),
            Invariant::Inventory,
        ),
        (
            "PrestaShop voucher (LU, scope-based)",
            Box::new(PrestaShop),
            Invariant::Voucher,
        ),
        (
            "Magento inventory (LU, scope-based)",
            Box::new(Magento),
            Invariant::Inventory,
        ),
        (
            "LFS cart (phantom, scope-based)",
            Box::new(LightningFastShop),
            Invariant::Cart,
        ),
    ];

    print!("{:<42}", "attack");
    for level in IsolationLevel::ALL {
        print!("{:>12}", short(level));
    }
    println!();
    for (label, app, invariant) in &scenarios {
        print!("{label:<42}");
        for level in IsolationLevel::ALL {
            let report = audit_cell(app.as_ref(), *invariant, level, 60);
            let cell = if report.cell.is_vulnerable() {
                "VULN"
            } else {
                "safe"
            };
            print!("{cell:>12}");
        }
        println!();
    }
    println!();
    println!("reading the shape (paper §4.2.5 / Table 2):");
    println!("  - scope-based attacks survive every isolation level, Serializable included;");
    println!("  - level-based Lost Updates die at true RR / SI / Serializable;");
    println!("  - the level-based phantom (Oscar voucher) survives everything but Serializable.");
    let _ = render_cell(Cell::Safe);

    if metrics_json || trace {
        instrumented_demo(trace);
    }
}

/// Race concurrent voucher checkouts on an instrumented store and dump
/// what the observability layer saw. This is the "Reading the engine"
/// demo from the README: the same attack traffic as the matrix above, but
/// with metrics (and optionally span tracing) enabled on the database.
fn instrumented_demo(trace: bool) {
    let app = Oscar;
    let db: Arc<Database> = app.make_store(IsolationLevel::ReadCommitted);
    db.enable_metrics();
    db.set_tracing(trace);

    // Four sessions, each filling its own cart and checking out with the
    // one shared voucher — concurrent redemptions racing on one row.
    let tasks: Vec<_> = (0..4)
        .map(|i| {
            let app = &app;
            move |conn: &mut dyn SqlConn| {
                let cart = i as i64 + 1;
                observed_request(conn, |c| app.add_to_cart(c, cart, PEN, 1))?;
                observed_request(conn, |c| {
                    app.checkout(c, cart, &CheckoutRequest::with_voucher(VOUCHER_CODE))
                })
            }
        })
        .collect();
    let results = run_concurrent(&db, tasks, std::time::Duration::ZERO);
    let committed = results.iter().filter(|r| r.is_ok()).count();

    println!();
    println!(
        "instrumented run: {committed}/{} voucher checkouts committed at ReadCommitted",
        results.len()
    );
    println!();
    println!("--- metrics (MetricsReport::to_json) ---");
    println!("{}", db.metrics_report().to_json());

    if trace {
        let events = db.take_trace();
        println!("--- trace ({} span events, trace_json) ---", events.len());
        println!("{}", trace_json(&events));
        println!("--- trace (chrome://tracing / Perfetto) ---");
        println!("{}", trace_chrome_json(&events));
    }
}

fn short(level: IsolationLevel) -> &'static str {
    match level {
        IsolationLevel::ReadUncommitted => "RU",
        IsolationLevel::ReadCommitted => "RC",
        IsolationLevel::MySqlRepeatableRead => "MySQL-RR",
        IsolationLevel::RepeatableRead => "RR",
        IsolationLevel::SnapshotIsolation => "SI",
        IsolationLevel::Serializable => "SER",
    }
}
