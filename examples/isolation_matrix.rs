//! Sweep one attack across every isolation level — the Table-2 question
//! in miniature: which levels admit which anomalies?
//!
//! ```text
//! cargo run -p acidrain-harness --example isolation_matrix
//! ```

use acidrain_apps::prelude::*;
use acidrain_db::IsolationLevel;
use acidrain_harness::attack::{audit_cell, Invariant};
use acidrain_harness::experiments::table5::render_cell;

fn main() {
    println!("One cell per (attack, isolation level): does the vulnerability manifest?");
    println!();
    let scenarios: Vec<(&str, Box<dyn ShopApp + Send + Sync>, Invariant)> = vec![
        (
            "Oscar voucher (phantom, level-based)",
            Box::new(Oscar),
            Invariant::Voucher,
        ),
        (
            "Oscar inventory (LU, level-based)",
            Box::new(Oscar),
            Invariant::Inventory,
        ),
        (
            "PrestaShop voucher (LU, scope-based)",
            Box::new(PrestaShop),
            Invariant::Voucher,
        ),
        (
            "Magento inventory (LU, scope-based)",
            Box::new(Magento),
            Invariant::Inventory,
        ),
        (
            "LFS cart (phantom, scope-based)",
            Box::new(LightningFastShop),
            Invariant::Cart,
        ),
    ];

    print!("{:<42}", "attack");
    for level in IsolationLevel::ALL {
        print!("{:>12}", short(level));
    }
    println!();
    for (label, app, invariant) in &scenarios {
        print!("{label:<42}");
        for level in IsolationLevel::ALL {
            let report = audit_cell(app.as_ref(), *invariant, level, 60);
            let cell = if report.cell.is_vulnerable() {
                "VULN"
            } else {
                "safe"
            };
            print!("{cell:>12}");
        }
        println!();
    }
    println!();
    println!("reading the shape (paper §4.2.5 / Table 2):");
    println!("  - scope-based attacks survive every isolation level, Serializable included;");
    println!("  - level-based Lost Updates die at true RR / SI / Serializable;");
    println!("  - the level-based phantom (Oscar voucher) survives everything but Serializable.");
    let _ = render_cell(Cell::Safe);
}

fn short(level: IsolationLevel) -> &'static str {
    match level {
        IsolationLevel::ReadUncommitted => "RU",
        IsolationLevel::ReadCommitted => "RC",
        IsolationLevel::MySqlRepeatableRead => "MySQL-RR",
        IsolationLevel::RepeatableRead => "RR",
        IsolationLevel::SnapshotIsolation => "SI",
        IsolationLevel::Serializable => "SER",
    }
}
