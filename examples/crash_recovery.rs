//! Kill a storefront mid-flight and bring it back: a seeded chaos run
//! with a write-ahead log attached dies at an injected crash point (the
//! simulated `kill -9` leaves the WAL directory exactly as a real kill
//! would), then a fresh store recovers the durable prefix and verifies
//! the serial invariants over it.
//!
//! ```text
//! cargo run -p acidrain-harness --example crash_recovery [seed]
//! ```

use acidrain_apps::prelude::*;
use acidrain_db::wal::scan_wal;
use acidrain_db::{CrashPoint, CrashSpec, FaultConfig, IsolationLevel, WalConfig};
use acidrain_harness::chaos::{recover_app_store, run_chaos, scratch_dir, state_digest};
use acidrain_harness::ChaosConfig;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD1E);
    let app = PrestaShop;
    let dir = scratch_dir("example");
    println!("WAL directory: {}", dir.display());

    // Arm a mid-append crash: the engine dies while the fourth commit
    // record is half-written, leaving a torn tail on disk.
    let config = ChaosConfig {
        seed,
        faults: FaultConfig::disabled()
            .with_deadlock(0.08)
            .with_crash(CrashSpec::new(CrashPoint::WalAppend, 4)),
        wal: Some(WalConfig::new(&dir)),
        ..ChaosConfig::default()
    };

    println!("chaos run against {} (seed {seed:#x})...", app.name());
    let report = run_chaos(&app, &config);
    assert!(report.crashed, "the armed crash point fired");
    println!(
        "killed mid-append after {} committed requests ({} never ran)",
        report.committed,
        config.sessions * config.requests_per_session
            - report.committed
            - report.rejected
            - report.failed,
    );

    // Restart: rebuild the store from schema + seed fixtures, then replay
    // the durable prefix of the log.
    let (db, info) = recover_app_store(&app, IsolationLevel::ReadCommitted, WalConfig::new(&dir))
        .expect("recovery never fails on a torn tail");
    println!(
        "recovered: {} commit records replayed, {} torn bytes discarded",
        info.commits_replayed, info.torn_bytes_discarded
    );
    let (records, _) = scan_wal(&WalConfig::new(&dir).log_path()).unwrap();
    assert_eq!(info.commits_replayed, records.len() as u64);

    for invariant in acidrain_harness::Invariant::ALL {
        if invariant.feature(&app) == FeatureStatus::Supported {
            match invariant.check(&db, &app) {
                Ok(()) => println!("invariant {invariant}: held on the recovered state"),
                Err(v) => println!("invariant {invariant}: VIOLATED — {v}"),
            }
        }
    }
    println!("recovered state digest: {:#018x}", state_digest(&db, &app));

    // Recovery is deterministic: a second restart rebuilds the same state.
    let (db2, _) = recover_app_store(&app, IsolationLevel::ReadCommitted, WalConfig::new(&dir))
        .expect("second recovery");
    assert_eq!(state_digest(&db, &app), state_digest(&db2, &app));
    println!("second restart: identical state, bit for bit");

    let _ = std::fs::remove_dir_all(&dir);
}
