//! The paper's running example (Figures 3–5): audit the payroll
//! application, print its abstract history, and execute the Figure-5
//! witness against the live database.
//!
//! ```text
//! cargo run -p acidrain-harness --example payroll_audit
//! ```

use acidrain_core::RefinementConfig;
use acidrain_harness::experiments::figures;

fn main() {
    println!("=== Figure 3b: the payroll SQL trace ===");
    for entry in figures::figure3_log() {
        println!("{entry}");
    }

    println!("\n=== Figure 4: the abstract history ===");
    let analyzer = figures::figure4_analyzer();
    let stats = analyzer.history().stats();
    println!(
        "{} operation nodes / {} transaction nodes ({} explicit) / {} API nodes / {} edges",
        stats.operation_nodes, stats.txn_nodes, stats.explicit_txns, stats.api_nodes, stats.edges
    );
    let report = analyzer.analyze(&RefinementConfig::none());
    println!("{} non-trivial abstract cycles:", report.finding_count());
    for finding in &report.findings {
        println!("  {}", analyzer.describe(finding));
    }

    // Emit the Figure-4 drawing for graphviz rendering.
    let dot_path = std::env::temp_dir().join("acidrain_figure4.dot");
    if std::fs::write(&dot_path, acidrain_core::to_dot(analyzer.history())).is_ok() {
        println!("(graphviz rendering written to {})", dot_path.display());
    }

    println!("\n=== Figure 5: witness for the raise/count anomaly ===");
    let (finding, trace) = figures::figure5_witness();
    println!("seed: {}", analyzer.describe(&finding));
    print!("{trace}");

    println!("\n=== Executing the witness against the live database ===");
    let (actual_cost, recorded_total) = figures::figure5_attack();
    println!("recorded salary total: {recorded_total}");
    println!("actual salary cost:    {actual_cost}");
    assert_ne!(recorded_total, actual_cost);
    println!(
        "=> the concurrently-added employee was counted in the raise total but never \
         received the raise — the paper's scope-based payroll anomaly."
    );
}
