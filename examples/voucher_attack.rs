//! The headline exploit from the paper's abstract: "users can buy a
//! single gift card, then spend it an unlimited number of times by
//! concurrently issuing checkout requests."
//!
//! ```text
//! cargo run -p acidrain-harness --example voucher_attack [concurrency]
//! ```
//!
//! Runs N concurrent voucher checkouts against Lightning Fast Shop using
//! the threaded stress executor (the paper's real attack mechanics) and
//! counts how many times the single-use voucher was redeemed.

use std::time::Duration;

use acidrain_apps::prelude::*;
use acidrain_harness::stress::run_concurrent;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let app = LightningFastShop;
    let db = app.make_store(acidrain_db::IsolationLevel::MySqlRepeatableRead);
    // Give the shop plenty of stock so only the voucher limit matters.
    {
        let mut conn = db.connect();
        conn.execute("UPDATE products SET stock = 100000 WHERE id = 1")
            .unwrap();
        for cart in 1..=n as i64 {
            app.add_to_cart(&mut conn, cart, PEN, 1).unwrap();
        }
    }
    db.take_log();

    println!("launching {n} concurrent checkout requests, all redeeming voucher {VOUCHER_CODE:?} (limit {VOUCHER_LIMIT})");
    let tasks: Vec<_> = (1..=n as i64)
        .map(|cart| {
            let app = &app;
            move |conn: &mut dyn SqlConn| {
                app.checkout(conn, cart, &CheckoutRequest::with_voucher(VOUCHER_CODE))
                    .is_ok()
            }
        })
        .collect();
    // A 2ms per-statement delay stands in for the paper's 200ms proxy,
    // widening the race windows.
    let results = run_concurrent(&db, tasks, Duration::from_millis(2));

    let succeeded = results.iter().filter(|ok| **ok).count();
    let redemptions = db.table_rows("voucher_applications").unwrap().len();
    let counter = db.table_rows("vouchers").unwrap()[0][4].as_i64().unwrap();
    println!("checkouts succeeded: {succeeded}/{n}");
    println!("voucher redemptions recorded: {redemptions} (usage counter says {counter})");
    match check_voucher(&db) {
        Err(v) => println!("INVARIANT VIOLATED: {v}"),
        Ok(()) => println!(
            "invariant held this run — stress attacks are probabilistic; rerun or raise \
             concurrency (the deterministic scheduler in `ecommerce_audit` lands it every time)"
        ),
    }
}
