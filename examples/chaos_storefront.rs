//! A seeded chaos run against a storefront: injected deadlocks, write
//! conflicts, and lock timeouts hammer a retrying shopper workload, and
//! the whole thing replays bit-for-bit from its seed.
//!
//! ```text
//! cargo run -p acidrain-harness --example chaos_storefront [seed]
//! ```
//!
//! Prints the request outcomes, what the fault injector did, how hard the
//! retry layer worked to absorb it, and the invariant verdicts over the
//! final committed state — then reruns the same seed to demonstrate the
//! reports are identical.

use acidrain_apps::prelude::*;
use acidrain_apps::RetryPolicy;
use acidrain_db::{FaultConfig, IsolationLevel};
use acidrain_harness::chaos::{run_chaos, ChaosConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xAC1D);
    let app = PrestaShop;
    let config = ChaosConfig {
        seed,
        faults: FaultConfig::disabled()
            .with_deadlock(0.10)
            .with_write_conflict(0.05)
            .with_lock_timeout(0.03),
        policy: RetryPolicy::RetryTxn,
        max_retries: 32,
        sessions: 6,
        requests_per_session: 9,
        isolation: IsolationLevel::ReadCommitted,
        metrics: false,
        use_indexes: true,
        use_range_indexes: true,
        wal: None,
    };

    println!("chaos run against {} (seed {seed:#x})", app.name());
    let report = run_chaos(&app, &config);

    println!(
        "requests: {} committed, {} rejected by business logic, {} failed",
        report.committed, report.rejected, report.failed
    );
    let f = &report.fault_stats;
    println!(
        "injected faults: {} deadlocks, {} write conflicts, {} lock timeouts over {} statements",
        f.injected_deadlocks,
        f.injected_write_conflicts,
        f.injected_lock_timeouts,
        f.statements_seen
    );
    let r = &report.retry_stats;
    println!(
        "retry layer: {} transaction replays, {} statement retries, {} give-ups",
        r.txn_replays, r.statement_retries, r.gave_up
    );
    println!(
        "query log: {} aborted attempts recorded; 2AD sees {} witnesses after discounting them",
        report.aborted_log_entries, report.witnesses
    );
    for (invariant, violation) in &report.invariant_results {
        match violation {
            None => println!("invariant {invariant}: held"),
            Some(v) => println!("invariant {invariant}: VIOLATED — {v}"),
        }
    }
    println!("final state digest: {:#018x}", report.state_digest);

    let replay = run_chaos(&app, &config);
    assert_eq!(report, replay);
    println!("replay with the same seed: identical report, bit for bit");
}
